"""NDB node recovery: a failed datanode rejoins and serves again."""

import pytest

from repro.ndb import run_transaction

from .conftest import build_harness


def test_restart_copies_data_and_rejoins():
    harness = build_harness()
    cluster = harness.cluster
    env = harness.env

    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="k")
        yield from txn.write("t", "k", "before-crash")
        yield from txn.commit()
        victim = cluster.partition_map.replicas_for_key("k").primary
        cluster.crash_datanode(victim, detect_now=True)

        # Write while the node is down: it must catch up on rejoin.
        def body(txn):
            yield from txn.write("t", "k2", "while-down")

        yield from run_transaction(harness.api, body, hint_table="t", hint_key="k2")

        copied = yield from cluster.restart_datanode(victim)
        assert copied > 0
        assert cluster.partition_map.is_up(victim)
        # The rejoined node's store has both rows (fragment copy).
        store = cluster.datanodes[victim].store
        return store.read("t", "k"), store.read("t", "k2")

    k, k2 = harness.run(scenario())
    assert k == "before-crash"
    # k2 present iff its partition lives in the victim's node group
    victim_rows = k2
    assert victim_rows in ("while-down", None)


def test_rejoined_node_serves_transactions():
    harness = build_harness()
    cluster = harness.cluster

    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="k")
        yield from txn.write("t", "k", 1)
        yield from txn.commit()
        victim = cluster.partition_map.replicas_for_key("k").primary
        cluster.crash_datanode(victim, detect_now=True)
        yield from cluster.restart_datanode(victim)

        def body(txn):
            yield from txn.write("t", "k", 2)

        yield from run_transaction(harness.api, body, hint_table="t", hint_key="k")
        # the rejoined node participates in the new write's replica chain
        replicas = cluster.partition_map.replicas_for_key("k")
        assert victim in replicas.all
        txn3 = harness.api.transaction(hint_table="t", hint_key="k")
        value = yield from txn3.read("t", "k")
        yield from txn3.commit()
        return value, cluster.datanodes[victim].store.read("t", "k")

    value, on_victim = harness.run(scenario())
    assert value == 2
    assert on_victim == 2


def test_restart_running_node_is_noop():
    harness = build_harness()
    cluster = harness.cluster

    def scenario():
        node = next(iter(cluster.datanodes))
        result = cluster.restart_datanode(node)
        # generator returns immediately (node already running)
        assert result is None or not cluster.datanodes[node].running is False
        yield harness.env.timeout(0)
        return True

    assert harness.run(scenario())


def test_recovery_restores_cluster_viability():
    """Losing a whole group kills the cluster; this needs full restart,
    but losing R-1 nodes and restarting them keeps everything alive."""
    harness = build_harness(num_datanodes=6, replication=3, azs=(1, 2, 3))
    cluster = harness.cluster

    def scenario():
        group = cluster.partition_map.node_groups[0]
        for node in group[:2]:  # R-1 failures in one group
            cluster.crash_datanode(node, detect_now=True)
        assert cluster.is_operational()
        for node in group[:2]:
            yield from cluster.restart_datanode(node)
        return all(cluster.partition_map.is_up(n) for n in group)

    assert harness.run(scenario())
