"""Cluster assembly, preload, configuration validation."""

import pytest

from repro.errors import ConfigError
from repro.ndb import NdbCluster, NdbConfig, Schema, ThreadConfig
from repro.ndb.cluster import az_assignment_for
from repro.net import Network, build_us_west1
from repro.sim import Environment, RngRegistry


def _cluster(num_datanodes=4, replication=2, azs=(1, 2), **kwargs):
    env = Environment()
    network = Network(env, build_us_west1())
    schema = Schema()
    schema.define("t")
    config = NdbConfig(
        num_datanodes=num_datanodes, replication=replication, **kwargs
    )
    return NdbCluster(
        env,
        network,
        config,
        schema,
        datanode_azs=az_assignment_for(num_datanodes, replication, list(azs)),
        mgmt_azs=(3,),
        rng=RngRegistry(0),
    )


def test_config_validation():
    with pytest.raises(ConfigError):
        NdbConfig(num_datanodes=5, replication=2)
    with pytest.raises(ConfigError):
        NdbConfig(replication=0)
    with pytest.raises(ConfigError):
        NdbConfig(num_partitions=0)


def test_thread_config_totals():
    assert ThreadConfig().total == 27
    assert ThreadConfig().counts()["ldm"] == 12


def test_az_assignment_length_checked():
    env = Environment()
    network = Network(env, build_us_west1())
    schema = Schema()
    with pytest.raises(ConfigError):
        NdbCluster(
            env,
            network,
            NdbConfig(num_datanodes=4, replication=2),
            schema,
            datanode_azs=[1, 2],  # wrong length
            rng=RngRegistry(0),
        )


def test_preload_places_rows_on_all_replicas():
    cluster = _cluster()
    count = cluster.preload("t", [(f"k{i}", f"k{i}", i) for i in range(20)])
    assert count == 20
    total_rows = sum(dn.store.row_count("t") for dn in cluster.datanodes.values())
    assert total_rows == 20 * 2  # replication factor 2


def test_preload_fully_replicated_table_everywhere():
    env = Environment()
    network = Network(env, build_us_west1())
    schema = Schema()
    schema.define("fr", fully_replicated=True)
    cluster = NdbCluster(
        env,
        network,
        NdbConfig(num_datanodes=4, replication=2),
        schema,
        datanode_azs=az_assignment_for(4, 2, [1, 2]),
        rng=RngRegistry(0),
    )
    cluster.preload("fr", [("k", "k", 1)])
    assert all(dn.store.read("fr", "k") == 1 for dn in cluster.datanodes.values())


def test_thread_busy_reports_all_types():
    cluster = _cluster()
    busy = cluster.thread_busy()
    assert set(busy) == {"ldm", "tc", "recv", "send", "rep", "io", "main"}
    ldm_busy, ldm_cores = busy["ldm"]
    assert ldm_cores == 4 * 12  # 4 datanodes x 12 LDM threads


def test_is_operational_lifecycle():
    cluster = _cluster()
    cluster.start(heartbeats=False)
    assert cluster.is_operational()
    group = cluster.partition_map.node_groups[0]
    for node in group:
        cluster.crash_datanode(node, detect_now=True)
    assert not cluster.is_operational()


def test_arbitrator_falls_back_to_next_mgmt():
    env = Environment()
    network = Network(env, build_us_west1())
    schema = Schema()
    schema.define("t")
    cluster = NdbCluster(
        env,
        network,
        NdbConfig(num_datanodes=4, replication=2),
        schema,
        datanode_azs=az_assignment_for(4, 2, [1, 2]),
        mgmt_azs=(3, 1, 2),
        rng=RngRegistry(0),
    )
    cluster.start(heartbeats=False)
    first = cluster.arbitrator()
    assert first is cluster.mgmt_nodes[0]
    first.shutdown()
    assert cluster.arbitrator() is cluster.mgmt_nodes[1]


def test_checkpoint_loop_writes_disk():
    cluster = _cluster(global_checkpoint_interval_ms=10.0)
    cluster.start(heartbeats=False)
    cluster.env.run(until=55)
    for dn in cluster.datanodes.values():
        # 5 checkpoint intervals elapsed
        assert dn.disk.bytes_written >= 5 * cluster.config.checkpoint_bytes
