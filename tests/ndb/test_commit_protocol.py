"""Message-level tests of the Fig. 2 commit protocol.

Counts the protocol messages on the wire for a single-row write and
verifies the paper's delayed-ACK change: for Read Backup tables the client
ACK waits for every backup's Completed (message 14 instead of 10).
"""

import pytest

from repro.net.network import Message, Network

from .conftest import build_harness


class _Tap:
    """Records every message the network delivers."""

    def __init__(self, network: Network):
        self.network = network
        self.log: list[tuple[float, str, str, str]] = []
        original = network._deliver

        def tapped(message: Message):
            self.log.append(
                (network.env.now, message.kind, str(message.src), str(message.dst))
            )
            original(message)

        network._deliver = tapped

    def kinds(self) -> list[str]:
        return [k for _t, k, _s, _d in self.log]


def _run_single_write(read_backup: bool):
    harness = build_harness(read_backup=read_backup, heartbeats=False)
    tap = _Tap(harness.network)
    table = "t" if read_backup else "plain"

    def scenario():
        txn = harness.api.transaction(hint_table=table, hint_key="row")
        yield from txn.write(table, "row", "v")
        yield from txn.commit()
        # Drain: the fire-and-forget Complete may still be in flight.
        yield harness.env.timeout(5.0)
        return harness.env.now

    harness.run(scenario())
    return harness, tap


def test_prepare_chain_order_primary_first():
    harness, tap = _run_single_write(read_backup=True)
    kinds = tap.kinds()
    # Chain: tc_write -> chain_prepare(s) -> prepared -> tc_commit ->
    # chain_commit -> committed -> complete -> completed -> reply.
    assert "tc_write" in kinds
    assert "prepared" in kinds
    assert kinds.index("prepared") > kinds.index("tc_write")
    assert "committed" in kinds
    assert kinds.index("committed") > kinds.index("prepared")


def test_read_backup_ack_after_completed():
    """RB table: the client ACK (commit reply) follows all Completed."""
    harness, tap = _run_single_write(read_backup=True)
    events = tap.log
    completed_times = [t for t, k, _s, _d in events if k == "completed"]
    # the commit reply is the last tc_commit-kind delivery (the RPC reply)
    commit_replies = [t for t, k, _s, _d in events if k == "tc_commit"]
    ack_time = commit_replies[-1]
    assert completed_times, "no Completed messages seen"
    assert ack_time > max(completed_times)


def test_plain_table_ack_before_complete_lands():
    """Without RB the ACK races the Complete (the paper's stale window)."""
    harness, tap = _run_single_write(read_backup=False)
    events = tap.log
    complete_times = [t for t, k, _s, _d in events if k == "complete"]
    commit_replies = [t for t, k, _s, _d in events if k == "tc_commit"]
    ack_time = commit_replies[-1]
    assert complete_times
    # The Complete is delivered to backups after (or at) the client ACK:
    # NDB sends it in parallel and does not wait.
    assert ack_time <= max(complete_times) + 1e-9


def test_no_completed_messages_without_read_backup():
    harness, tap = _run_single_write(read_backup=False)
    assert "completed" not in tap.kinds()


def test_message_count_scales_with_replication():
    """R=3 writes exchange more chain messages than R=2."""

    def chain_messages(replication, datanodes):
        harness = build_harness(
            num_datanodes=datanodes, replication=replication, azs=(1, 2), heartbeats=False
        )
        tap = _Tap(harness.network)

        def scenario():
            txn = harness.api.transaction(hint_table="t", hint_key="k")
            yield from txn.write("t", "k", 1)
            yield from txn.commit()

        harness.run(scenario())
        kinds = tap.kinds()
        return sum(kinds.count(k) for k in ("chain_prepare", "chain_commit", "complete", "completed"))

    assert chain_messages(3, 6) > chain_messages(2, 6)


def test_redo_log_written_on_commit():
    harness, _tap = _run_single_write(read_backup=True)
    total_redo = sum(dn.disk.bytes_written for dn in harness.cluster.datanodes.values())
    # one row applied on primary + backup => two redo appends
    assert total_redo == 2 * harness.cluster.config.costs.redo_bytes_per_write
