"""NDB client API misuse and retry-path coverage."""

import pytest

from repro.errors import NdbError, NetworkError, TransactionAbortedError
from repro.ndb import run_transaction

from .conftest import build_harness


def test_op_after_commit_rejected(harness):
    def scenario():
        txn = harness.api.transaction()
        yield from txn.write("t", "k", 1)
        yield from txn.commit()
        with pytest.raises(NdbError):
            yield from txn.read("t", "k")
        return True

    assert harness.run(scenario())


def test_double_abort_is_idempotent(harness):
    def scenario():
        txn = harness.api.transaction()
        yield from txn.write("t", "k", 1)
        yield from txn.abort()
        yield from txn.abort()  # no-op
        return True

    assert harness.run(scenario())


def test_commit_of_empty_transaction(harness):
    def scenario():
        txn = harness.api.transaction()
        yield from txn.commit()
        return True

    assert harness.run(scenario())


def test_run_transaction_gives_up_after_max_retries():
    harness = build_harness(deadlock_timeout_ms=10.0)
    env = harness.env

    def blocker():
        txn = harness.api.transaction()
        yield from txn.write("t", "hot", 1)
        yield env.timeout(10_000)  # hold the lock essentially forever
        yield from txn.commit()

    def body(txn):
        yield from txn.write("t", "hot", 2)

    def scenario():
        env.process(blocker())
        yield env.timeout(1)
        with pytest.raises(TransactionAbortedError):
            yield from run_transaction(
                harness.api, body, hint_table="t", hint_key="hot", max_retries=2
            )
        return True

    assert harness.run(scenario(), until=60_000)


def test_scan_empty_partition(harness):
    def scenario():
        txn = harness.api.transaction()
        rows = yield from txn.scan("t", "empty-partition-key")
        yield from txn.commit()
        return rows

    assert harness.run(scenario()) == []


def test_network_mailbox_requires_registration():
    harness = build_harness()
    from repro.types import NodeAddress, NodeKind

    ghost = NodeAddress(NodeKind.CLIENT, 404)
    with pytest.raises(NetworkError):
        harness.network.mailbox(ghost)


def test_read_stats_accumulate_across_transactions(harness):
    def scenario():
        txn = harness.api.transaction()
        yield from txn.write("t", "k", 1)
        yield from txn.commit()
        before = harness.cluster.read_stats.total_reads()
        for _ in range(4):
            txn = harness.api.transaction(hint_table="t", hint_key="k")
            yield from txn.read("t", "k")
            yield from txn.commit()
        return harness.cluster.read_stats.total_reads() - before

    assert harness.run(scenario()) == 4
