"""Tests for node groups, partition placement and failure promotion."""

import pytest

from repro.errors import ConfigError, NoDatanodesError
from repro.ndb import PartitionMap, stable_hash
from repro.ndb.cluster import az_assignment_for
from repro.types import NodeAddress, NodeKind


def _nodes(n):
    return [NodeAddress(NodeKind.NDB_DATANODE, i) for i in range(1, n + 1)]


def test_node_groups_round_robin():
    """Consecutive node indices land in different groups (Figs 3/4)."""
    pm = PartitionMap(_nodes(6), replication=3, num_partitions=12)
    assert pm.num_groups == 2
    # N1, N3, N5 form one group; N2, N4, N6 the other.
    indices = [[n.index for n in group] for group in pm.node_groups]
    assert indices == [[1, 3, 5], [2, 4, 6]]


def test_replication_must_divide_node_count():
    with pytest.raises(ConfigError):
        PartitionMap(_nodes(5), replication=2, num_partitions=4)


def test_replicas_have_distinct_nodes_and_expected_count():
    pm = PartitionMap(_nodes(12), replication=2, num_partitions=48)
    for partition in range(48):
        rs = pm.replicas(partition)
        assert len(set(rs.all)) == 2
        group = pm.node_groups[pm.group_of(partition)]
        assert set(rs.all) <= set(group)


def test_primary_rotates_within_group():
    pm = PartitionMap(_nodes(4), replication=2, num_partitions=8)
    # partitions 0 and 2 are both in group 0 but with different primaries
    primaries = {pm.replicas(p).primary for p in range(0, 8, pm.num_groups)}
    assert len(primaries) == 2


def test_partition_of_is_stable():
    pm = PartitionMap(_nodes(4), replication=2, num_partitions=16)
    assert pm.partition_of(("inodes", 42)) == pm.partition_of(("inodes", 42))
    assert stable_hash("abc") == stable_hash("abc")


def test_failure_promotes_backup_to_primary():
    pm = PartitionMap(_nodes(4), replication=2, num_partitions=8)
    partition = 0
    before = pm.replicas(partition)
    pm.mark_down(before.primary)
    after = pm.replicas(partition)
    assert after.primary == before.backups[0]
    assert before.primary not in after.all


def test_whole_group_down_raises():
    pm = PartitionMap(_nodes(4), replication=2, num_partitions=8)
    group = pm.node_groups[0]
    for node in group:
        pm.mark_down(node)
    assert not pm.cluster_viable()
    partition = next(p for p in range(8) if pm.group_of(p) == 0)
    with pytest.raises(NoDatanodesError):
        pm.replicas(partition)


def test_recovery_restores_membership():
    pm = PartitionMap(_nodes(4), replication=2, num_partitions=8)
    node = pm.replicas(0).primary
    pm.mark_down(node)
    pm.mark_up(node)
    assert node in pm.replicas(0).all
    assert pm.cluster_viable()


def test_fully_replicated_chain_covers_all_live_nodes():
    pm = PartitionMap(_nodes(6), replication=3, num_partitions=6)
    rs = pm.replicas(0, fully_replicated=True)
    assert set(rs.all) == set(_nodes(6))
    pm.mark_down(_nodes(6)[0])
    rs = pm.replicas(0, fully_replicated=True)
    assert len(rs.all) == 5


def test_role_of():
    pm = PartitionMap(_nodes(6), replication=3, num_partitions=6)
    rs = pm.replicas(3)
    assert rs.role_of(rs.primary) == 0
    assert rs.role_of(rs.backups[0]) == 1
    assert rs.role_of(rs.backups[1]) == 2
    outsider = [n for n in _nodes(6) if n not in rs.all][0]
    assert rs.role_of(outsider) is None


def test_az_assignment_spans_groups_across_azs():
    """Every node group must have at most one member per AZ."""
    for n, r in ((12, 2), (12, 3), (6, 3)):
        azs = list(range(1, r + 1))
        assignment = az_assignment_for(n, r, azs)
        pm = PartitionMap(_nodes(n), replication=r, num_partitions=n)
        by_addr = dict(zip(_nodes(n), assignment))
        for group in pm.node_groups:
            group_azs = [by_addr[m] for m in group]
            assert len(set(group_azs)) == len(group_azs)


def test_az_assignment_single_az():
    assignment = az_assignment_for(12, 2, [2])
    assert set(assignment) == {2}


def test_partitions_on_node():
    pm = PartitionMap(_nodes(4), replication=2, num_partitions=8)
    node = _nodes(4)[0]
    owned = pm.partitions_on(node)
    # node 1 is in group 0: partitions 0, 2, 4, 6
    assert owned == [0, 2, 4, 6]
