"""Unit tests for the 4-case TC selection policy and read routing."""

import random

import pytest

from repro.ndb import PartitionMap, TableDef, select_read_replica, select_tc
from repro.net import build_us_west1
from repro.types import NodeAddress, NodeKind


@pytest.fixture
def world():
    topo = build_us_west1()
    nodes = []
    for i in range(1, 7):
        addr = NodeAddress(NodeKind.NDB_DATANODE, i)
        topo.add_host(addr, az=((i - 1) // 2) + 1)  # 2 nodes per AZ
        nodes.append(addr)
    pm = PartitionMap(nodes, replication=3, num_partitions=12)
    caller = NodeAddress(NodeKind.NAMENODE, 1)
    topo.add_host(caller, az=2)
    return topo, pm, caller


def test_case1_read_backup_prefers_local_az(world):
    topo, pm, caller = world
    table = TableDef(name="t", read_backup=True)
    rng = random.Random(0)
    for key in range(30):
        tc = select_tc(topo, pm, table, key, caller, az_aware=True, rng=rng)
        replicas = pm.replicas_for_key(key)
        assert tc in replicas.all
        assert topo.az_of(tc) == 2  # R3 over 3 AZs: one replica per AZ


def test_case2_fully_replicated_any_local_node(world):
    topo, pm, caller = world
    table = TableDef(name="fr", fully_replicated=True)
    rng = random.Random(0)
    for key in range(20):
        tc = select_tc(topo, pm, table, key, caller, az_aware=True, rng=rng)
        assert topo.az_of(tc) == 2


def test_case3_default_table_local_replica_or_primary(world):
    topo, pm, caller = world
    table = TableDef(name="plain")
    rng = random.Random(0)
    for key in range(30):
        tc = select_tc(topo, pm, table, key, caller, az_aware=True, rng=rng)
        replicas = pm.replicas_for_key(key)
        local = [n for n in replicas.all if topo.az_of(n) == 2]
        if local:
            assert tc in local
        else:
            assert tc == replicas.primary


def test_case4_no_hint_uses_proximity(world):
    topo, pm, caller = world
    rng = random.Random(0)
    for _ in range(20):
        tc = select_tc(topo, pm, None, None, caller, az_aware=True, rng=rng)
        assert topo.az_of(tc) == 2


def test_vanilla_hint_gives_primary(world):
    topo, pm, caller = world
    table = TableDef(name="t")
    rng = random.Random(0)
    for key in range(20):
        tc = select_tc(topo, pm, table, key, caller, az_aware=False, rng=rng)
        assert tc == pm.replicas_for_key(key).primary


def test_vanilla_no_hint_random_spread(world):
    topo, pm, caller = world
    rng = random.Random(0)
    seen = {select_tc(topo, pm, None, None, caller, az_aware=False, rng=rng) for _ in range(50)}
    assert len(seen) >= 4  # spreads over the cluster, ignores AZs


def test_selection_skips_down_nodes(world):
    topo, pm, caller = world
    table = TableDef(name="t", read_backup=True)
    rng = random.Random(0)
    key = 3
    local = [n for n in pm.replicas_for_key(key).all if topo.az_of(n) == 2]
    for node in local:
        pm.mark_down(node)
    tc = select_tc(topo, pm, table, key, caller, az_aware=True, rng=rng)
    assert pm.is_up(tc)


def test_read_replica_plain_always_primary(world):
    topo, pm, caller = world
    table = TableDef(name="plain")
    rng = random.Random(0)
    node, role = select_read_replica(topo, pm, table, 4, caller, True, rng)
    assert role == 0
    assert node == pm.replicas(4).primary


def test_read_replica_rb_az_local(world):
    topo, pm, caller = world
    table = TableDef(name="t", read_backup=True)
    rng = random.Random(0)
    for partition in range(12):
        node, role = select_read_replica(topo, pm, table, partition, caller, True, rng)
        assert topo.az_of(node) == 2
        assert pm.replicas(partition).role_of(node) == role


def test_read_replica_rb_random_without_awareness(world):
    topo, pm, caller = world
    table = TableDef(name="t", read_backup=True)
    rng = random.Random(0)
    azs = set()
    for _ in range(30):
        node, _role = select_read_replica(topo, pm, table, 4, caller, False, rng)
        azs.add(topo.az_of(node))
    assert len(azs) == 3  # spread over all replicas
