"""NDB failure handling: node crashes, promotions, split-brain arbitration."""

import pytest

from repro.errors import TransactionAbortedError
from repro.ndb import LockMode, run_transaction
from repro.types import NodeAddress, NodeKind

from .conftest import build_harness


def _addr(i):
    return NodeAddress(NodeKind.NDB_DATANODE, i)


def test_crash_promotes_backup_and_reads_survive():
    harness = build_harness()
    cluster = harness.cluster

    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="k")
        yield from txn.write("t", "k", "survives")
        yield from txn.commit()
        partition = cluster.partition_map.partition_of("k")
        primary = cluster.partition_map.replicas(partition).primary
        cluster.crash_datanode(primary, detect_now=True)

        def body(txn):
            value = yield from txn.read("t", "k")
            return value

        value = yield from run_transaction(harness.api, body, hint_table="t", hint_key="k")
        return value

    assert harness.run(scenario()) == "survives"
    assert cluster.is_operational()


def test_writes_continue_after_single_node_failure():
    harness = build_harness()
    cluster = harness.cluster

    def scenario():
        cluster.crash_datanode(_addr(1), detect_now=True)

        def body(txn):
            yield from txn.write("t", "after-crash", 1)

        yield from run_transaction(harness.api, body, hint_table="t", hint_key="after-crash")
        txn = harness.api.transaction()
        value = yield from txn.read("t", "after-crash")
        yield from txn.commit()
        return value

    assert harness.run(scenario()) == 1


def test_whole_node_group_failure_brings_cluster_down():
    harness = build_harness()
    cluster = harness.cluster
    group = cluster.partition_map.node_groups[0]

    def scenario():
        for node in group:
            cluster.crash_datanode(node, detect_now=True)
        yield harness.env.timeout(1)
        return cluster.is_operational()

    assert harness.run(scenario()) is False
    # every surviving node was told to shut down
    assert all(not dn.running for dn in cluster.datanodes.values())


def test_inflight_transaction_aborts_when_participant_dies():
    harness = build_harness(deadlock_timeout_ms=500.0)
    cluster = harness.cluster
    env = harness.env

    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="k")
        yield from txn.write("t", "k", "v")  # prepared on both replicas
        partition = cluster.partition_map.partition_of("k")
        primary = cluster.partition_map.replicas(partition).primary
        # Kill a chain participant before commit.
        if primary == txn.tc:
            victim = cluster.partition_map.replicas(partition).backups[0]
        else:
            victim = primary
        cluster.crash_datanode(victim, detect_now=True)
        try:
            yield from txn.commit()
        except TransactionAbortedError:
            return "aborted"
        return "committed"

    result = harness.run(scenario())
    # Either outcome is legal depending on timing; the cluster must survive.
    assert result in ("aborted", "committed")
    assert cluster.is_operational()


def test_heartbeats_detect_crash():
    harness = build_harness(heartbeats=True, heartbeat_interval_ms=10.0)
    cluster = harness.cluster

    def scenario():
        yield harness.env.timeout(50)  # let heartbeats flow
        cluster.crash_datanode(_addr(2), detect_now=False)
        yield harness.env.timeout(200)  # detection deadline = 3 * 10ms
        return cluster.partition_map.is_up(_addr(2))

    assert harness.run(scenario()) is False
    assert cluster.is_operational()


def test_orphaned_locks_released_when_tc_dies():
    harness = build_harness()
    cluster = harness.cluster
    env = harness.env

    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="k")
        yield from txn.write("t", "k", "v")  # X locks held at replicas
        cluster.crash_datanode(txn.tc, detect_now=True)
        yield env.timeout(1)

        # A new transaction (on a surviving TC) must be able to lock the row.
        def body(txn2):
            yield from txn2.write("t", "k", "recovered")

        yield from run_transaction(harness.api, body, hint_table="t", hint_key="k")
        txn3 = harness.api.transaction()
        value = yield from txn3.read("t", "k")
        yield from txn3.commit()
        return value

    assert harness.run(scenario()) == "recovered"


def test_split_brain_one_side_survives():
    """AZ partition: the side that wins arbitration keeps running."""
    harness = build_harness(
        num_datanodes=4,
        replication=2,
        azs=(2, 3),
        mgmt_azs=(1,),
        heartbeats=True,
        heartbeat_interval_ms=10.0,
    )
    cluster = harness.cluster
    network = harness.network

    def scenario():
        yield harness.env.timeout(50)
        network.partition_azs({2}, {3})
        yield harness.env.timeout(500)
        survivors = {dn.addr for dn in cluster.datanodes.values() if dn.running}
        return survivors

    survivors = harness.run(scenario())
    topo = network.topology
    # Exactly one side survived, and it is AZ-pure.
    assert survivors
    azs = {topo.az_of(a) for a in survivors}
    assert len(azs) == 1
    assert len(survivors) == 2
    arbitrator = cluster.mgmt_nodes[0]
    assert arbitrator.grants >= 1


def test_losing_side_shut_down_by_arbitration():
    harness = build_harness(
        num_datanodes=4,
        replication=2,
        azs=(2, 3),
        mgmt_azs=(1,),
        heartbeats=True,
        heartbeat_interval_ms=10.0,
    )
    cluster = harness.cluster
    network = harness.network

    def scenario():
        yield harness.env.timeout(50)
        network.partition_azs({2}, {3})
        yield harness.env.timeout(500)
        losers = [dn for dn in cluster.datanodes.values() if not dn.running]
        return [dn.shutdown_reason for dn in losers]

    reasons = harness.run(scenario())
    assert reasons and all(r in ("lost arbitration", "declared failed") for r in reasons)


def test_unreachable_arbitrator_shuts_component_down():
    """If a component cannot reach the arbitrator it must not keep running."""
    harness = build_harness(
        num_datanodes=4,
        replication=2,
        azs=(2, 3),
        mgmt_azs=(1,),
        heartbeats=True,
        heartbeat_interval_ms=10.0,
    )
    cluster = harness.cluster
    network = harness.network

    def scenario():
        yield harness.env.timeout(50)
        # AZ3 is cut off from everything, including the arbitrator in AZ1.
        network.partition_azs({1, 2}, {3})
        yield harness.env.timeout(500)
        return {
            dn.addr: dn.running for dn in cluster.datanodes.values()
        }

    running = harness.run(scenario())
    topo = network.topology
    for addr, alive in running.items():
        if topo.az_of(addr) == 3:
            assert not alive
        else:
            assert alive


def test_heal_resets_arbitration_epoch():
    harness = build_harness(
        num_datanodes=4, replication=2, azs=(2, 3), mgmt_azs=(1,), heartbeats=True
    )
    cluster = harness.cluster
    harness.network.partition_azs({2}, {3})
    cluster.heal()
    assert cluster.mgmt_nodes[0].granted_component is None
    assert harness.network.reachable(_addr(1), _addr(3))


def test_abandoned_transaction_reaped():
    """TransactionInactiveTimeout: a dead client's txn is rolled back."""
    harness = build_harness(inactive_timeout_ms=50.0)
    env = harness.env

    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="zombie")
        yield from txn.write("t", "zombie", 1)
        # the client "dies": never commits or aborts
        yield env.timeout(200)  # past the inactivity timeout
        prepared = sum(
            dn.store.prepared_count() for dn in harness.cluster.datanodes.values()
        )
        locks = sum(dn.locks.active_rows for dn in harness.cluster.datanodes.values())
        # another writer can now take the row
        txn2 = harness.api.transaction(hint_table="t", hint_key="zombie")
        yield from txn2.write("t", "zombie", 2)
        yield from txn2.commit()
        return prepared, locks, harness.cluster.active_transactions

    prepared, locks, active = harness.run(scenario())
    assert prepared == 0
    assert locks == 0


def test_reaped_transaction_cannot_resurrect():
    """A slow-but-alive client whose txn the reaper rolled back must see
    every later operation fail — not silently re-register at the TC.

    Resurrection is a gray-failure double-apply: the reaper released the
    txn's exclusive locks, so by the time the laggard resumes, another
    transaction may have read-modify-written the same rows.  Real NDB
    answers post-reap operations with "unknown transaction".
    """
    harness = build_harness(inactive_timeout_ms=50.0)
    env = harness.env

    def scenario():
        txn = harness.api.transaction(hint_table="t", hint_key="slow")
        yield from txn.write("t", "slow", 1)
        yield env.timeout(200)  # reaper fires: locks freed, write rolled back
        with pytest.raises(TransactionAbortedError):
            yield from txn.write("t", "slow", 2)

        # Commit alone must not report success for a reaped txn either.
        txn2 = harness.api.transaction(hint_table="t", hint_key="slow")
        yield from txn2.write("t", "slow", 3)
        yield env.timeout(200)
        with pytest.raises(TransactionAbortedError):
            yield from txn2.commit()

        # A fresh transaction proceeds normally over the freed rows.
        txn3 = harness.api.transaction(hint_table="t", hint_key="slow")
        yield from txn3.write("t", "slow", 4)
        yield from txn3.commit()

    harness.run(scenario())
