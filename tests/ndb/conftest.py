"""Shared fixtures: small NDB clusters wired into a simulated region."""

import pytest

from repro.net import Network, build_us_west1
from repro.ndb import NdbCluster, NdbConfig, Schema
from repro.ndb.cluster import az_assignment_for
from repro.sim import Environment, RngRegistry
from repro.types import NodeAddress, NodeKind


class Harness:
    """A simulation environment with one NDB cluster and one API client."""

    def __init__(self, env, network, cluster, client_addr):
        self.env = env
        self.network = network
        self.cluster = cluster
        self.client_addr = client_addr
        self.api = cluster.api(client_addr)

    def run(self, generator, until=10_000):
        return self.env.run_process(generator, until=until)


def build_harness(
    num_datanodes=4,
    replication=2,
    azs=(1, 2),
    mgmt_azs=(3,),
    az_aware=True,
    read_backup=True,
    fully_replicated_tables=(),
    client_az=1,
    num_partitions=8,
    heartbeats=False,
    **config_kwargs,
):
    env = Environment()
    topo = build_us_west1()
    network = Network(env, topo)
    schema = Schema()
    schema.define("t", read_backup=read_backup)
    schema.define("plain", read_backup=False)
    for name in fully_replicated_tables:
        schema.define(name, fully_replicated=True)
    config = NdbConfig(
        num_datanodes=num_datanodes,
        replication=replication,
        num_partitions=num_partitions,
        az_aware=az_aware,
        **config_kwargs,
    )
    cluster = NdbCluster(
        env,
        network,
        config,
        schema,
        datanode_azs=az_assignment_for(num_datanodes, replication, list(azs)),
        mgmt_azs=mgmt_azs,
        rng=RngRegistry(seed=7),
    )
    client_addr = NodeAddress(NodeKind.CLIENT, 1)
    topo.add_host(client_addr, az=client_az)
    network.register(client_addr)
    cluster.start(heartbeats=heartbeats)
    return Harness(env, network, cluster, client_addr)


@pytest.fixture
def harness():
    return build_harness()
