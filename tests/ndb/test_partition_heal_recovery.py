"""End-to-end region recovery: partition, arbitration, heal, rejoin."""

import pytest

from repro.ndb import run_transaction

from .conftest import build_harness


def test_full_partition_lifecycle():
    """Split brain -> one side survives -> heal -> losers rejoin -> all serve."""
    harness = build_harness(
        num_datanodes=4,
        replication=2,
        azs=(2, 3),
        mgmt_azs=(1,),
        heartbeats=True,
        heartbeat_interval_ms=10.0,
    )
    cluster = harness.cluster
    network = harness.network
    env = harness.env

    def scenario():
        # Seed data before the trouble starts.
        def put(txn):
            yield from txn.write("t", "pre", "partition")

        yield from run_transaction(harness.api, put, hint_table="t", hint_key="pre")

        network.partition_azs({2}, {3})
        yield env.timeout(500)  # detection + arbitration
        losers = [dn.addr for dn in cluster.datanodes.values() if not dn.running]
        assert len(losers) == 2

        # The surviving side keeps serving (client is in AZ 1, reaches both).
        def write_during(txn):
            yield from txn.write("t", "during", "partition")

        yield from run_transaction(harness.api, write_during, hint_table="t", hint_key="during")

        # Heal and bring the losers back via node recovery.
        cluster.heal()
        for addr in losers:
            yield from cluster.restart_datanode(addr)
        yield env.timeout(100)

        assert cluster.is_operational()
        assert all(cluster.partition_map.is_up(a) for a in cluster.datanodes)

        # Rejoined nodes caught up on the write made while they were out.
        def read_back(txn):
            a = yield from txn.read("t", "pre")
            b = yield from txn.read("t", "during")
            return a, b

        values = yield from run_transaction(harness.api, read_back, hint_table="t", hint_key="pre")
        return values

    pre, during = harness.run(scenario(), until=120_000)
    assert pre == "partition"
    assert during == "partition"


def test_second_partition_after_heal_rearbitrates():
    harness = build_harness(
        num_datanodes=4,
        replication=2,
        azs=(2, 3),
        mgmt_azs=(1,),
        heartbeats=True,
        heartbeat_interval_ms=10.0,
    )
    cluster = harness.cluster
    network = harness.network
    env = harness.env

    def scenario():
        network.partition_azs({2}, {3})
        yield env.timeout(500)
        losers = [dn.addr for dn in cluster.datanodes.values() if not dn.running]
        cluster.heal()
        for addr in losers:
            yield from cluster.restart_datanode(addr)
        yield env.timeout(100)
        first_epoch_grants = cluster.mgmt_nodes[0].grants

        network.partition_azs({2}, {3})
        yield env.timeout(500)
        survivors = {dn.addr for dn in cluster.datanodes.values() if dn.running}
        return first_epoch_grants, cluster.mgmt_nodes[0].grants, len(survivors)

    first, second, survivors = harness.run(scenario(), until=240_000)
    assert second > first  # the new epoch granted again
    assert survivors == 2  # exactly one side survived, again
