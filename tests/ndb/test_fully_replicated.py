"""Fully Replicated tables: the paper's second new table option (IV-A3)."""

import pytest

from .conftest import build_harness


def _fr_harness(**kwargs):
    return build_harness(
        num_datanodes=6,
        replication=3,
        azs=(1, 2, 3),
        fully_replicated_tables=("fr",),
        **kwargs,
    )


def test_fr_write_commits_on_all_nodes_before_ack():
    harness = _fr_harness()

    def scenario():
        txn = harness.api.transaction(hint_table="fr", hint_key="k")
        yield from txn.write("fr", "k", "v")
        yield from txn.commit()
        # At ACK time every datanode has applied (delayed-ack, msg 14).
        return [dn.store.read("fr", "k") for dn in harness.cluster.datanodes.values()]

    assert harness.run(scenario()) == ["v"] * 6


def test_fr_reads_are_az_local_from_any_az():
    """With a copy on every node, reads never leave the reader's AZ."""
    harness = _fr_harness(client_az=3)

    def scenario():
        txn = harness.api.transaction(hint_table="fr", hint_key="k")
        yield from txn.write("fr", "k", 1)
        yield from txn.commit()
        stats = harness.cluster.read_stats
        base = stats.az_remote_reads
        for _ in range(10):
            txn = harness.api.transaction(hint_table="fr", hint_key="k")
            yield from txn.read("fr", "k")
            yield from txn.commit()
        return stats.az_remote_reads - base

    assert harness.run(scenario()) == 0


def test_fr_write_slower_than_normal_table():
    """FR trades slower writes for faster reads (Section IV-A)."""
    harness = _fr_harness()
    env = harness.env

    def timed_write(table):
        start = env.now
        txn = harness.api.transaction(hint_table=table, hint_key="w")
        yield from txn.write(table, "w", 1)
        yield from txn.commit()
        return env.now - start

    def scenario():
        fr_time = yield from timed_write("fr")
        t_time = yield from timed_write("t")
        return fr_time, t_time

    fr_time, t_time = harness.run(scenario())
    assert fr_time > t_time  # the chain spans all six nodes, not three


def test_fr_survives_node_failure():
    harness = _fr_harness()
    cluster = harness.cluster

    def scenario():
        txn = harness.api.transaction(hint_table="fr", hint_key="k")
        yield from txn.write("fr", "k", "durable")
        yield from txn.commit()
        victim = next(iter(cluster.datanodes))
        cluster.crash_datanode(victim, detect_now=True)
        txn = harness.api.transaction(hint_table="fr", hint_key="k")
        value = yield from txn.read("fr", "k")
        yield from txn.commit()
        return value

    assert harness.run(scenario()) == "durable"
