"""Failure-protocol edge cases: arbitration loss, racing suspicions, rejoin.

These exercise the paths of :mod:`repro.ndb.failure` that the happy-path
crash tests never hit: a partition where *no* side can reach the
arbitrator, two suspicions racing in one ring, a node recovering while the
protocol that declared it dead is still settling, and the take-over
cleanup the surviving component owes transactions of a departed one.
"""

import pytest

from repro.ndb.schema import LockMode
from repro.types import NodeAddress, NodeKind

from .conftest import build_harness


def _dn(i):
    return NodeAddress(NodeKind.NDB_DATANODE, i)


def _chaos_harness(**kwargs):
    # 4 datanodes / replication 2 -> groups {ndbd1,ndbd3}, {ndbd2,ndbd4};
    # ndbd1,2 in az1, ndbd3,4 in az2, management (arbitrator) in az3.
    return build_harness(
        heartbeats=True,
        heartbeat_interval_ms=10.0,
        deadlock_timeout_ms=100.0,
        inactive_timeout_ms=120.0,
        **kwargs,
    )


def test_arbitrator_unreachable_shuts_down_both_components():
    h = _chaos_harness()

    def scenario():
        yield h.env.timeout(50)
        # Cut az1 | az2 *and* both off from the arbitrator's az3: two
        # viable components, neither able to win arbitration.
        h.network.partition_azs((1,), (2,))
        h.network.partition_azs((1, 2), (3,))
        yield h.env.timeout(400)

    h.run(scenario(), until=10_000)
    assert all(not dn.running for dn in h.cluster.datanodes.values())
    reasons = {dn.shutdown_reason for dn in h.cluster.datanodes.values()}
    assert "lost arbitration" in reasons


def test_partition_with_reachable_arbitrator_kills_only_losers():
    h = _chaos_harness()

    def scenario():
        yield h.env.timeout(50)
        h.network.partition_azs((1,), (2, 3))  # az1 loses the arbitrator
        yield h.env.timeout(400)

    h.run(scenario(), until=10_000)
    survivors = {dn.addr for dn in h.cluster.datanodes.values() if dn.running}
    assert survivors == {_dn(3), _dn(4)}  # az2, still with one node per group
    assert h.cluster.partition_map.cluster_viable()


def test_two_simultaneous_crash_suspicions_resolve_cleanly():
    h = _chaos_harness()

    def scenario():
        yield h.env.timeout(50)
        # One member of each group at the same instant: two failure
        # protocols race through the same ring without deadlocking it.
        h.cluster.crash_datanode(_dn(3))
        h.cluster.crash_datanode(_dn(4))
        yield h.env.timeout(400)

    h.run(scenario(), until=10_000)
    assert not h.cluster.datanodes[_dn(3)].running
    assert not h.cluster.datanodes[_dn(4)].running
    assert h.cluster.datanodes[_dn(1)].running
    assert h.cluster.datanodes[_dn(2)].running
    assert h.cluster.partition_map.cluster_viable()
    assert h.cluster.heartbeats._handling == set()


def test_suspect_stays_in_handling_for_whole_arbitration_round_trip():
    h = _chaos_harness()
    seen_during = []

    def scenario():
        yield h.env.timeout(50)
        h.network.partition_azs((1,), (2, 3))
        # Sample the dedup set while arbitration RPCs are in flight.
        for _ in range(20):
            yield h.env.timeout(5)
            seen_during.append(set(h.cluster.heartbeats._handling))
        yield h.env.timeout(300)

    h.run(scenario(), until=10_000)
    assert any(s for s in seen_during)  # suspicion held during the protocol
    assert h.cluster.heartbeats._handling == set()  # and released after


def test_node_recovering_mid_protocol_is_not_double_declared():
    h = _chaos_harness()

    def scenario():
        yield h.env.timeout(50)
        h.cluster.crash_datanode(_dn(3))
        yield h.env.timeout(60)  # heartbeat detection declares it failed
        assert not h.cluster.partition_map.is_up(_dn(3))
        yield from h.cluster.restart_datanode(_dn(3))
        # Stale suspicion right after rejoin must not knock it back out:
        # the checker watches from re-observation, not from the outage.
        yield h.env.timeout(300)

    h.run(scenario(), until=10_000)
    dn = h.cluster.datanodes[_dn(3)]
    assert dn.running
    assert h.cluster.partition_map.is_up(_dn(3))
    assert h.cluster.heartbeats._handling == set()


def test_component_shutdown_rolls_back_orphans_on_survivors():
    """The surviving component aborts transactions of the departed one.

    Regression test: shutdown_component marks the losers down, which used
    to make the survivors' on_node_failed a no-op (is_up guard) — leaking
    the losers' coordinated transactions as prepared rows + locks forever.
    """
    h = _chaos_harness()
    tc = _dn(2)  # will die with the losing component
    survivor = h.cluster.datanodes[_dn(1)]
    txid = 900001
    h.cluster.register_txn(txid, tc)
    survivor.store.prepare(txid, "t", "k1", "k1", "v")
    granted = survivor.locks.acquire(txid, ("t", "k1"), LockMode.EXCLUSIVE)
    assert granted.triggered

    h.cluster.shutdown_component({_dn(2), _dn(4)}, "lost arbitration")

    assert h.cluster.active_transactions == 0
    assert survivor.store.prepared_count() == 0
    assert survivor.locks.active_rows == 0
    # The losers really are down.
    assert not h.cluster.datanodes[_dn(2)].running
    assert not h.cluster.datanodes[_dn(4)].running
