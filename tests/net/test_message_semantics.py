"""Remaining network semantics: replies on non-RPCs, late replies, drops."""

import pytest

from repro.errors import NetworkError
from repro.net import Message, Network, build_us_west1
from repro.sim import Environment
from repro.types import NodeAddress, NodeKind


def _world():
    env = Environment()
    topo = build_us_west1()
    net = Network(env, topo)
    a = NodeAddress(NodeKind.CLIENT, 1)
    b = NodeAddress(NodeKind.CLIENT, 2)
    topo.add_host(a, az=1)
    topo.add_host(b, az=2)
    net.register(a)
    net.register(b)
    return env, net, a, b


def test_reply_to_non_rpc_rejected():
    env, net, a, b = _world()
    plain = Message(src=a, dst=b, kind="oneway")
    with pytest.raises(NetworkError):
        net.reply(plain)


def test_duplicate_reply_ignored():
    """A second reply to the same rpc_id must not crash or re-trigger."""
    env, net, a, b = _world()

    def server():
        msg = yield net.mailbox(b).get()
        net.reply(msg, payload="first")
        net.reply(msg, payload="second")  # dup: dropped at completion

    def client():
        result = yield net.call(a, b, "ask")
        yield env.timeout(5)  # let the duplicate land
        return result

    env.process(server())
    assert env.run_process(client()) == "first"


def test_message_to_unregistered_host_fails_rpc():
    env, net, a, b = _world()
    ghost = NodeAddress(NodeKind.CLIENT, 99)
    net.topology.add_host(ghost, az=3)  # host exists but never registered

    def client():
        with pytest.raises(Exception):
            yield net.call(a, ghost, "ask")
        return True

    assert env.run_process(client())
    assert net.dropped_messages == 1


def test_send_sizes_accumulate_per_direction():
    env, net, a, b = _world()
    for size in (100, 200, 300):
        net.send(Message(src=a, dst=b, kind="x", size=size))
    env.run()
    assert net.traffic.node_bytes(a).sent == 600
    assert net.traffic.node_bytes(b).received == 600
    assert net.traffic.messages == 3


def test_partition_does_not_affect_same_side_traffic():
    env, net, a, b = _world()
    c = NodeAddress(NodeKind.CLIENT, 3)
    net.topology.add_host(c, az=1)
    net.register(c)
    net.partition_azs({1}, {2})
    got = []

    def receiver():
        msg = yield net.mailbox(c).get()
        got.append(msg.kind)

    env.process(receiver())
    net.send(Message(src=a, dst=c, kind="local"))
    net.send(Message(src=a, dst=b, kind="cut"))
    env.run()
    assert got == ["local"]
    assert net.dropped_messages == 1
