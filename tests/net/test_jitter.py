"""Network jitter option."""

import random

from repro.net import Message, Network, build_us_west1
from repro.sim import Environment
from repro.types import NodeAddress, NodeKind


def _setup(jitter):
    env = Environment()
    topo = build_us_west1()
    net = Network(env, topo, jitter_frac=jitter, rng=random.Random(5))
    a, b = NodeAddress(NodeKind.CLIENT, 1), NodeAddress(NodeKind.CLIENT, 2)
    topo.add_host(a, az=1)
    topo.add_host(b, az=2)
    net.register(a)
    net.register(b)
    return env, net, a, b


def _arrival_times(env, net, a, b, count):
    times = []

    def rx():
        for _ in range(count):
            yield net.mailbox(b).get()
            times.append(env.now)

    proc = env.process(rx())

    def tx():
        for _ in range(count):
            net.send(Message(src=a, dst=b, kind="x"))
            yield env.timeout(10)

    env.process(tx())
    env.run()
    return [t % 10 for t in times]


def test_no_jitter_is_deterministic():
    env, net, a, b = _setup(0.0)
    latencies = _arrival_times(env, net, a, b, 5)
    assert len(set(round(l, 9) for l in latencies)) == 1


def test_jitter_varies_latency_within_bounds():
    env, net, a, b = _setup(0.2)
    latencies = _arrival_times(env, net, a, b, 10)
    base = 0.360  # AZ1 -> AZ2
    assert len(set(round(l, 6) for l in latencies)) > 1
    for latency in latencies:
        assert base * 0.8 <= latency <= base * 1.2
