"""Tests for the AZ topology and Table I latency matrix."""

import pytest

from repro.errors import ConfigError
from repro.net import SAME_HOST_LATENCY_MS, TABLE1_LATENCY_MS, Topology, build_us_west1
from repro.types import NodeAddress, NodeKind


def _addr(kind, index):
    return NodeAddress(kind, index)


def test_table1_is_symmetric_and_complete():
    topo = build_us_west1()
    for a in range(1, 4):
        for b in range(1, 4):
            assert topo.az_pair_latency(a, b) == topo.az_pair_latency(b, a)


def test_intra_az_latency_lower_than_inter():
    topo = build_us_west1()
    for a in range(1, 4):
        for b in range(1, 4):
            if a != b:
                assert topo.az_pair_latency(a, a) < topo.az_pair_latency(a, b)


def test_latency_values_match_paper_table1():
    assert TABLE1_LATENCY_MS[("us-west1-a", "us-west1-a")] == 0.247
    assert TABLE1_LATENCY_MS[("us-west1-b", "us-west1-c")] == 0.399
    assert TABLE1_LATENCY_MS[("us-west1-a", "us-west1-c")] == 0.372


def test_host_placement_and_az_lookup():
    topo = build_us_west1()
    addr = _addr(NodeKind.NAMENODE, 1)
    topo.add_host(addr, az=2, cores=32)
    assert topo.az_of(addr) == 2
    assert topo.host(addr).cores == 32


def test_duplicate_host_rejected():
    topo = build_us_west1()
    addr = _addr(NodeKind.NAMENODE, 1)
    topo.add_host(addr, az=1)
    with pytest.raises(ConfigError):
        topo.add_host(addr, az=2)


def test_az_zero_placement_rejected():
    topo = build_us_west1()
    with pytest.raises(ConfigError):
        topo.add_host(_addr(NodeKind.NAMENODE, 1), az=0)


def test_unknown_host_raises():
    topo = build_us_west1()
    with pytest.raises(ConfigError):
        topo.az_of(_addr(NodeKind.CLIENT, 9))


def test_same_vm_latency_is_loopback():
    topo = build_us_west1()
    a = _addr(NodeKind.NDB_DATANODE, 1)
    b = _addr(NodeKind.NAMENODE, 1)
    topo.add_host(a, az=1)
    topo.add_host(b, az=1, colocated_with=a)
    assert topo.latency(a, b) == SAME_HOST_LATENCY_MS
    assert topo.same_vm(a, b)


def test_proximity_rank_ordering():
    """Paper §IV-A4: same-host < same-AZ < cross-AZ."""
    topo = build_us_west1()
    n1 = _addr(NodeKind.NDB_DATANODE, 1)
    n2 = _addr(NodeKind.NDB_DATANODE, 2)
    n3 = _addr(NodeKind.NDB_DATANODE, 3)
    colo = _addr(NodeKind.NAMENODE, 1)
    topo.add_host(n1, az=1)
    topo.add_host(n2, az=1)
    topo.add_host(n3, az=2)
    topo.add_host(colo, az=1, colocated_with=n1)
    assert topo.proximity_rank(n1, colo) == 0
    assert topo.proximity_rank(n1, n2) == 1
    assert topo.proximity_rank(n1, n3) == 2


def test_extra_az_for_arbitrator():
    topo = build_us_west1(extra_azs=("us-west1-arb",))
    assert topo.num_azs == 4
    assert topo.az_pair_latency(4, 1) > 0


def test_hosts_in_az():
    topo = build_us_west1()
    for i in range(4):
        topo.add_host(_addr(NodeKind.DATANODE, i), az=(i % 2) + 1)
    assert len(topo.hosts_in_az(1)) == 2
    assert len(topo.hosts_in_az(2)) == 2
    assert topo.hosts_in_az(3) == []
