"""Tests for message delivery, RPC, failures and partitions."""

import pytest

from repro.errors import HostUnreachableError
from repro.net import Message, Network, build_us_west1
from repro.sim import Environment
from repro.types import NodeAddress, NodeKind


@pytest.fixture
def net():
    env = Environment()
    topo = build_us_west1()
    network = Network(env, topo)
    hosts = {}
    for i, az in enumerate((1, 2, 3), start=1):
        addr = NodeAddress(NodeKind.NDB_DATANODE, i)
        topo.add_host(addr, az=az)
        network.register(addr)
        hosts[i] = addr
    return env, network, hosts


def test_send_delivers_with_az_latency(net):
    env, network, hosts = net
    received = []

    def receiver():
        msg = yield network.mailbox(hosts[2]).get()
        received.append((env.now, msg.payload))

    env.process(receiver())
    network.send(Message(src=hosts[1], dst=hosts[2], kind="ping", payload="x"))
    env.run()
    # AZ1 -> AZ2 is us-west1-a -> us-west1-b = 0.360ms
    assert received == [(0.360, "x")]


def test_intra_az_faster_than_cross_az(net):
    env, network, hosts = net
    topo = network.topology
    same_az = NodeAddress(NodeKind.NAMENODE, 1)
    topo.add_host(same_az, az=1)
    network.register(same_az)
    t_same = topo.latency(hosts[1], same_az)
    t_cross = topo.latency(hosts[1], hosts[2])
    assert t_same < t_cross


def test_rpc_roundtrip(net):
    env, network, hosts = net

    def server():
        while True:
            msg = yield network.mailbox(hosts[2]).get()
            network.reply(msg, payload=msg.payload * 2)

    def client():
        result = yield network.call(hosts[1], hosts[2], "double", payload=21)
        return (env.now, result)

    env.process(server())
    when, result = env.run_process(client())
    assert result == 42
    assert when == pytest.approx(0.720)  # two AZ1<->AZ2 hops


def test_rpc_remote_error_propagates(net):
    env, network, hosts = net

    def server():
        msg = yield network.mailbox(hosts[2]).get()
        network.reply(msg, payload=ValueError("bad request"), ok=False)

    def client():
        with pytest.raises(ValueError, match="bad request"):
            yield network.call(hosts[1], hosts[2], "op")
        return "handled"

    env.process(server())
    assert env.run_process(client()) == "handled"


def test_rpc_to_down_host_fails(net):
    env, network, hosts = net
    network.set_down(hosts[2])

    def client():
        with pytest.raises(HostUnreachableError):
            yield network.call(hosts[1], hosts[2], "op")
        return env.now

    # Failure is detected at delivery time (one latency later).
    assert env.run_process(client()) == pytest.approx(0.360)


def test_host_death_fails_inflight_rpc(net):
    env, network, hosts = net

    def server():
        yield network.mailbox(hosts[2]).get()
        # never replies; dies while client waits

    def killer():
        yield env.timeout(1.0)
        network.set_down(hosts[2])

    def client():
        with pytest.raises(HostUnreachableError):
            yield network.call(hosts[1], hosts[2], "op")
        return env.now

    env.process(server())
    env.process(killer())
    assert env.run_process(client()) == 1.0


def test_partition_blocks_messages_and_fails_rpcs(net):
    env, network, hosts = net

    def client():
        with pytest.raises(HostUnreachableError):
            yield network.call(hosts[2], hosts[3], "op")
        return "cut"

    network.partition_azs({2}, {3})
    assert not network.reachable(hosts[2], hosts[3])
    assert network.reachable(hosts[1], hosts[2])  # AZ1 still talks to AZ2
    assert env.run_process(client()) == "cut"


def test_partition_heal_restores_connectivity(net):
    env, network, hosts = net
    network.partition_azs({2}, {3})
    network.heal_partitions()
    assert network.reachable(hosts[2], hosts[3])


def test_traffic_accounting_by_az_pair(net):
    env, network, hosts = net

    def server():
        while True:
            msg = yield network.mailbox(hosts[2]).get()
            network.reply(msg, payload=None, size=1000)

    def client():
        yield network.call(hosts[1], hosts[2], "op", size=500)

    env.process(server())
    env.run_process(client())
    traffic = network.traffic
    assert traffic.az_pair_bytes[(1, 2)] == 500
    assert traffic.az_pair_bytes[(2, 1)] == 1000
    assert traffic.cross_az_bytes == 1500
    assert traffic.intra_az_bytes == 0
    assert traffic.node_bytes(hosts[1]).sent == 500
    assert traffic.node_bytes(hosts[1]).received == 1000


def test_traffic_snapshot_delta(net):
    env, network, hosts = net

    def exchange():
        yield env.timeout(0)
        network.send(Message(src=hosts[1], dst=hosts[2], kind="a", size=100))
        yield env.timeout(1)

    env.run_process(exchange())
    snap = network.traffic.snapshot()

    def second():
        network.send(Message(src=hosts[1], dst=hosts[2], kind="b", size=250))
        yield env.timeout(1)

    env.run_process(second())
    delta = network.traffic.delta_since(snap)
    assert delta.total_bytes == 250
    assert delta.messages == 1


def test_messages_from_down_host_are_dropped(net):
    env, network, hosts = net
    network.set_down(hosts[1])
    network.send(Message(src=hosts[1], dst=hosts[2], kind="x"))
    env.run()
    assert network.dropped_messages == 1
    assert network.traffic.total_bytes == 0


def test_recovered_host_receives_again(net):
    env, network, hosts = net
    network.set_down(hosts[2])
    network.set_up(hosts[2])
    got = []

    def receiver():
        msg = yield network.mailbox(hosts[2]).get()
        got.append(msg.kind)

    env.process(receiver())
    network.send(Message(src=hosts[1], dst=hosts[2], kind="hello"))
    env.run()
    assert got == ["hello"]
