"""Tests for traffic accounting and the inter-AZ fabric cap."""

import pytest

from repro.net import Message, Network, TrafficMatrix, build_us_west1
from repro.sim import Environment
from repro.types import NodeAddress, NodeKind


def _world(az_link_bandwidth=None):
    env = Environment()
    topo = build_us_west1()
    net = Network(env, topo, az_link_bandwidth_bytes_per_ms=az_link_bandwidth)
    a = NodeAddress(NodeKind.CLIENT, 1)
    b = NodeAddress(NodeKind.CLIENT, 2)
    c = NodeAddress(NodeKind.CLIENT, 3)
    topo.add_host(a, az=1)
    topo.add_host(b, az=2)
    topo.add_host(c, az=1)
    for addr in (a, b, c):
        net.register(addr)
    return env, net, a, b, c


def test_cross_az_fraction():
    matrix = TrafficMatrix()
    a = NodeAddress(NodeKind.CLIENT, 1)
    b = NodeAddress(NodeKind.CLIENT, 2)
    matrix.record(a, 1, b, 2, 300)
    matrix.record(a, 1, a, 1, 100)
    assert matrix.cross_az_bytes == 300
    assert matrix.intra_az_bytes == 100
    assert matrix.cross_az_fraction() == pytest.approx(0.75)


def test_fabric_cap_queues_cross_az_only():
    # 100 bytes/ms fabric: a 1000-byte cross-AZ message takes 10ms extra.
    env, net, a, b, c = _world(az_link_bandwidth=100)
    got = []

    def rx(addr, tag):
        def loop():
            msg = yield net.mailbox(addr).get()
            got.append((tag, env.now))

        return loop

    env.process(rx(b, "cross")())
    env.process(rx(c, "local")())
    net.send(Message(src=a, dst=b, kind="x", size=1000))
    net.send(Message(src=a, dst=c, kind="y", size=1000))
    env.run()
    times = dict(got)
    assert times["local"] == pytest.approx(0.247)  # latency only
    assert times["cross"] == pytest.approx(0.360 + 10.0)  # + fabric drain


def test_fabric_serializes_messages():
    env, net, a, b, c = _world(az_link_bandwidth=100)
    arrivals = []

    def rx():
        while True:
            yield net.mailbox(b).get()
            arrivals.append(env.now)

    env.process(rx())
    for _ in range(3):
        net.send(Message(src=a, dst=b, kind="x", size=500))
    env.run(until=100)
    # each 500B message takes 5ms of fabric: drains at 5, 10, 15 (+latency)
    assert arrivals == pytest.approx([5.36, 10.36, 15.36])


def test_no_cap_means_no_queueing():
    env, net, a, b, c = _world(az_link_bandwidth=None)
    arrivals = []

    def rx():
        while True:
            yield net.mailbox(b).get()
            arrivals.append(env.now)

    env.process(rx())
    for _ in range(3):
        net.send(Message(src=a, dst=b, kind="x", size=10_000))
    env.run(until=10)
    assert arrivals == pytest.approx([0.36, 0.36, 0.36])
