"""Exception-hierarchy invariants the layers rely on."""

import pytest

from repro import errors


def test_everything_is_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        if isinstance(cls, type) and issubclass(cls, BaseException):
            assert issubclass(cls, errors.ReproError), name


def test_retryable_flag_defaults():
    exc = errors.TransactionAbortedError("x")
    assert exc.retryable
    exc = errors.TransactionAbortedError("x", retryable=False)
    assert not exc.retryable


def test_lock_timeout_is_retryable_abort():
    exc = errors.LockTimeoutError("waited too long")
    assert isinstance(exc, errors.TransactionAbortedError)
    assert isinstance(exc, errors.NdbError)
    assert exc.retryable


def test_fs_error_taxonomy():
    for cls in (
        errors.FileNotFoundFsError,
        errors.FileAlreadyExistsError,
        errors.NotDirectoryError,
        errors.DirectoryNotEmptyError,
        errors.InvalidPathError,
        errors.LeaseExpiredError,
        errors.SafeModeError,
        errors.NoNamenodeError,
        errors.PlacementError,
    ):
        assert issubclass(cls, errors.FsError)


def test_network_error_taxonomy():
    assert issubclass(errors.HostUnreachableError, errors.NetworkError)
    assert not issubclass(errors.HostUnreachableError, errors.NdbError)


def test_fs_and_ndb_trees_are_disjoint():
    assert not issubclass(errors.FsError, errors.NdbError)
    assert not issubclass(errors.NdbError, errors.FsError)
