"""Example scripts must keep running (protection against doc rot)."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(_EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_runs():
    proc = _run("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "atomic rename" in proc.stdout
    assert "AZ-local reads" in proc.stdout


def test_az_local_reads_runs():
    proc = _run("az_local_reads.py")
    assert proc.returncode == 0, proc.stderr
    assert "Read Backup ENABLED" in proc.stdout
    assert "100.0%" in proc.stdout  # RB off: all primary; RB on: all AZ-local


def test_az_failure_drill_runs():
    proc = _run("az_failure_drill.py")
    assert proc.returncode == 0, proc.stderr
    assert "no data loss" in proc.stdout
    assert "exactly one side survived" in proc.stdout


def test_trace_replay_runs():
    proc = _run("trace_replay.py")
    assert proc.returncode == 0, proc.stderr
    assert "recorded 300 operations" in proc.stdout
    assert "HopsFS-CL" in proc.stdout


@pytest.mark.slow
def test_spotify_benchmark_runs():
    proc = _run("spotify_benchmark.py", "2", timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert "ops/s" in proc.stdout
