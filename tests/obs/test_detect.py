"""Detector scoring: ground-truth windows, flap damping, monitor runs.

Unit tests build schedules and alerts by hand; the two integration tests
at the bottom run the full monitored stack once on the fault-free
baseline (must stay silent) and once on an AZ outage (must detect it).
"""

import pytest

from repro.obs.detect import (BASELINE_SCENARIO, FaultWindow, fault_windows,
                              monitor_slos, run_monitor, score_alerts)
from repro.obs.slo import Alert


def _event(at_ms, action, node=None, az=None):
    return {"at_ms": at_ms, "action": action, "node": node, "az": az}


# fault_trace rows only need their absolute completion time in column 0.
_TRACE = [(100.0, "x")]


# -- fault_windows -----------------------------------------------------------

def test_fault_windows_recovers_absolute_origin():
    # Schedule times are injector-relative; the first trace entry is the
    # first event's absolute completion, so origin = 100 - 10 = 90.
    schedule = [
        _event(10.0, "crash_node", node="nn1"),
        _event(60.0, "recover_node", node="nn1"),
    ]
    trace = [(100.0, "crash nn1")]
    windows = fault_windows(schedule, trace, run_end_ms=500.0)
    assert len(windows) == 1
    assert windows[0].fault_class == "crash_node"
    assert windows[0].start_ms == 100.0
    assert windows[0].end_ms == 150.0


def test_fault_windows_closers_match_by_key():
    schedule = [
        _event(0.0, "crash_node", node="nn1"),
        _event(20.0, "crash_node", node="nn2"),
        _event(50.0, "recover_node", node="nn2"),   # must not close nn1
        _event(90.0, "recover_node", node="nn1"),
    ]
    # The two overlapping crash windows merge into one episode; the episode
    # runs to nn1's recovery at 190 — if the nn2 closer wrongly closed nn1
    # too, the episode would end at 150.
    (window,) = fault_windows(schedule, _TRACE, run_end_ms=500.0)
    assert (window.start_ms, window.end_ms) == (100.0, 190.0)


def test_fault_windows_recover_all_closes_everything():
    schedule = [
        _event(0.0, "az_outage", az=2),
        _event(10.0, "partition"),
        _event(40.0, "recover_all"),
    ]
    windows = fault_windows(schedule, _TRACE, run_end_ms=500.0)
    assert {w.fault_class for w in windows} == {"az_outage", "partition"}
    assert all(w.end_ms == 140.0 for w in windows)


def test_fault_windows_unclosed_fault_runs_to_end():
    schedule = [_event(0.0, "degrade_link")]
    (window,) = fault_windows(schedule, _TRACE, run_end_ms=321.0)
    assert (window.start_ms, window.end_ms) == (100.0, 321.0)


def test_fault_windows_merges_same_class_episodes():
    # Rolling restarts: three staggered crashes are one fault episode,
    # not three independently-detectable windows.
    schedule = [
        _event(0.0, "crash_node", node="nn1"),
        _event(30.0, "recover_node", node="nn1"),
        _event(60.0, "crash_node", node="nn2"),
        _event(90.0, "recover_node", node="nn2"),
    ]
    merged = fault_windows(schedule, _TRACE, run_end_ms=500.0, merge_gap_ms=40.0)
    assert len(merged) == 1
    assert (merged[0].start_ms, merged[0].end_ms) == (100.0, 190.0)
    # Without the gap the 30ms healthy gap keeps them distinct.
    assert len(fault_windows(schedule, _TRACE, run_end_ms=500.0)) == 2


def test_fault_windows_empty_inputs():
    assert fault_windows([], [], 100.0) == []
    assert fault_windows([_event(0.0, "partition")], [], 100.0) == []


# -- score_alerts ------------------------------------------------------------

def _alert(slo, fired_ms, resolved_ms, windows=3):
    return Alert(slo=slo, kind="availability", series="client.ops",
                 fired_index=int(fired_ms // 10), fired_ms=fired_ms,
                 resolved_index=int(resolved_ms // 10), resolved_ms=resolved_ms,
                 peak_burn=5.0, windows=windows)


def test_score_alerts_matches_inside_window_plus_grace():
    windows = [FaultWindow("partition", 100.0, 200.0)]
    score = score_alerts(windows, [_alert("availability", 130.0, 210.0)],
                         grace_ms=60.0)
    assert score.recall == 1.0
    assert score.precision == 1.0
    assert score.false_alert_windows == 0
    assert windows[0].detection_latency_ms == 30.0
    assert windows[0].detected_by == ["availability"]


def test_score_alerts_outside_grace_is_false_positive():
    windows = [FaultWindow("partition", 100.0, 200.0)]
    score = score_alerts(windows, [_alert("availability", 280.0, 300.0, windows=4)],
                         grace_ms=60.0)
    assert score.recall == 0.0
    assert score.precision == 0.0
    assert score.false_alert_windows == 4


def test_score_alerts_flap_damping_merges_refires():
    # One SLO resolving and re-firing within the flap gap is one incident:
    # detection latency reads from the first fire, and the second fire
    # (inside the grace tail) cannot count as an extra matched alert.
    windows = [FaultWindow("az_outage", 100.0, 200.0)]
    flappy = [_alert("availability", 120.0, 150.0),
              _alert("availability", 190.0, 230.0)]
    score = score_alerts(windows, flappy, grace_ms=60.0)
    assert score.total_alerts == 1
    assert score.precision == 1.0
    assert windows[0].detection_latency_ms == 20.0


def test_score_alerts_distinct_slos_do_not_damp_together():
    windows = [FaultWindow("az_outage", 100.0, 200.0)]
    score = score_alerts(windows, [_alert("availability", 120.0, 150.0),
                                   _alert("latency-p99", 190.0, 230.0)],
                         grace_ms=60.0)
    assert score.total_alerts == 2
    assert sorted(windows[0].detected_by) == ["availability", "latency-p99"]


def test_score_alerts_damping_does_not_mutate_engine_alerts():
    flappy = [_alert("availability", 120.0, 150.0),
              _alert("availability", 190.0, 230.0)]
    score_alerts([FaultWindow("az_outage", 100.0, 200.0)], flappy, grace_ms=60.0)
    assert flappy[0].resolved_ms == 150.0   # originals untouched


def test_empty_run_scores_perfect():
    score = score_alerts([], [])
    assert score.recall == 1.0 and score.precision == 1.0
    assert score.false_alert_windows == 0


# -- monitor_slos ------------------------------------------------------------

def test_monitor_slos_derives_per_setup_bank():
    hopsfs = monitor_slos("HopsFS-CL (3,3)")
    names = [s.name for s in hopsfs]
    assert "availability" in names
    assert "throughput-az1" in names and "throughput-az3" in names
    assert "liveness-nn.handle.nn1" in names
    cephfs = [s.name for s in monitor_slos("CephFS")]
    assert "liveness-mds.handle.mds1" in cephfs
    single_az = [s.name for s in monitor_slos("HopsFS (3,1)")]
    assert not any(n.startswith("throughput-az") for n in single_az)


def test_run_monitor_rejects_unknown_scenario():
    with pytest.raises(ValueError):
        run_monitor("no-such-scenario")


# -- full monitored runs -----------------------------------------------------

def test_baseline_run_is_silent_and_green():
    # Default scenario load: thinner traffic makes the p99 objective
    # noisy, and silence-on-baseline is a claim about the real workload.
    result = run_monitor(BASELINE_SCENARIO, "HopsFS-CL (3,3)", seed=7)
    assert result.ok
    assert result.alerts == []
    assert result.score.windows == []
    assert result.score.false_alert_windows == 0
    assert result.all_green
    # The artifact embeds the Table-1-style phase breakdown (satellite of
    # the report --json path) and a non-empty op-rate timeline.
    assert result.breakdown["ops"]
    assert any(row["count"] for row in result.timeline)
    payload = result.to_json()
    assert payload["ok"] is True and payload["breakdown"]["ops"]


def test_az_outage_is_detected_with_latency():
    result = run_monitor("az-outage-under-load", "HopsFS-CL (3,3)", seed=99)
    assert result.ok
    assert result.score.recall == 1.0
    assert result.score.precision == 1.0
    assert result.score.false_alert_windows == 0
    (window,) = result.score.windows
    assert window.fault_class == "az_outage"
    assert window.detected and window.detected_by
    assert window.detection_latency_ms is not None
    assert 0.0 <= window.detection_latency_ms <= 60.0
    assert "DETECTED" in result.render()
    assert "<html>" in result.render_html()
