"""SLO burn-rate engine: calibration, firing, resolving, horizon.

These tests drive a :class:`TimeSeriesHub` synthetically — one list of
``(latency_ms, ok)`` ops per window — so each behaviour is checked in
isolation from the simulator.  The hypothesis test at the bottom pins the
docstring's shift-invariance claim: evaluation depends only on the
sequence of window aggregates, so translating the whole timeline by a
constant number of windows translates every alert by exactly that
constant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.obs.slo import (SloEngine, SloSpec, component_liveness_slos,
                           default_slos, per_az_slos)
from repro.obs.timeseries import TimeSeriesHub

INTERVAL = 10.0

# Four windows of healthy traffic: enough to calibrate every default spec
# (calibration_windows=4, min_ops<=4).
CALIBRATION = [[(0.5, True)] * 10 for _ in range(4)]


def drive(specs, windows, offset=0, load_window_ms=None):
    """Feed ``windows`` (one ops list per window) through a fresh engine."""
    hub = TimeSeriesHub(interval_ms=INTERVAL)
    engine = SloEngine(specs, hub, load_window_ms=load_window_ms)
    for i, ops in enumerate(windows):
        now = (i + offset) * INTERVAL + 0.5
        hub.roll(now)                      # seal empty windows too
        for latency_ms, ok in ops:
            hub.record_op(1, latency_ms, ok, now)
    end = (offset + len(windows) - 1) * INTERVAL + 1.0
    hub.finalize(end)
    engine.finalize(end)
    return engine


# -- spec validation ---------------------------------------------------------

def test_spec_rejects_unknown_kind_and_bad_windows():
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="vibes")
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="availability", fast_windows=6, slow_windows=3)
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="availability", error_budget=0.0)


def test_engine_rejects_duplicate_names():
    specs = [SloSpec(name="a", kind="availability")] * 2
    with pytest.raises(ValueError):
        SloEngine(specs, TimeSeriesHub(interval_ms=INTERVAL))


# -- calibration gating ------------------------------------------------------

def test_no_alerts_until_calibration_completes():
    # Errors *during* the calibration phase never fire: the engine has no
    # baseline yet, so those windows only feed calibration (and windows
    # below min_ops don't even do that).
    engine = drive(default_slos(), [[(0.5, False)] * 10] * 3)
    assert engine.alerts == []
    thresholds = engine.thresholds()
    assert not thresholds["availability"]["calibrated"]


def test_calibration_sets_baselines_from_traffic_windows():
    engine = drive(default_slos(), CALIBRATION)
    t = engine.thresholds()
    assert t["latency-p99"]["calibrated"]
    assert t["latency-p99"]["baseline_ops_per_window"] == 10.0
    assert t["latency-p99"]["baseline_mean_ms"] == 0.5
    # 0.5ms ops land in the 0.5 bucket; p99×mult(1.0) floors at 5.0ms.
    assert t["latency-p99"]["latency_threshold_ms"] == 5.0


# -- firing and resolving per kind -------------------------------------------

def test_availability_alert_fires_on_error_burst_and_resolves():
    windows = CALIBRATION + [[(0.5, False)] * 5 + [(0.5, True)] * 5] * 3 \
        + [[(0.5, True)] * 10] * 4
    engine = drive(default_slos(), windows)
    fired = [a for a in engine.alerts if a.slo == "availability"]
    assert len(fired) == 1
    alert = fired[0]
    assert alert.fired_index == 4          # first post-calibration window
    assert alert.resolved_index is not None
    assert "finalize" not in alert.detail  # resolved by recovery, not teardown
    assert alert.peak_burn >= 2.0


def test_latency_alert_fires_on_tail_shift_without_errors():
    # 30% of ops jump past the calibrated 5ms threshold — all successful.
    slow = [[(8.0, True)] * 3 + [(0.5, True)] * 7] * 4
    engine = drive(default_slos(), CALIBRATION + slow)
    assert any(a.slo == "latency-p99" for a in engine.alerts)
    assert not any(a.slo == "availability" for a in engine.alerts)


def test_throughput_alert_fires_on_silence():
    # A closed-loop driver under total outage produces empty windows, not
    # errors; the throughput floor is the detector for that.
    engine = drive(default_slos(), CALIBRATION + [[]] * 4)
    fired = [a for a in engine.alerts if a.slo == "throughput-floor"]
    assert len(fired) == 1
    # Two silent windows satisfy min_ops=2 (empty windows weigh 1 op of
    # evidence each), so the floor fires on the second one.
    assert fired[0].fired_index == 5
    assert not any(a.slo == "availability" for a in engine.alerts)


def test_healthy_timeline_stays_silent():
    engine = drive(default_slos(), CALIBRATION + [[(0.5, True)] * 10] * 20)
    assert engine.alerts == []


def test_finalize_resolves_open_alerts():
    engine = drive(default_slos(), CALIBRATION + [[]] * 4)
    alert = engine.alerts[0]
    assert alert.resolved_index is not None
    assert "(resolved:finalize)" in alert.detail


# -- horizon -----------------------------------------------------------------

def test_load_window_anchors_horizon_and_suppresses_drain_silence():
    # Offered load stops after 4 windows; the quiet drain that follows
    # must not read as a throughput outage.
    engine = drive(default_slos(), CALIBRATION + [[]] * 8,
                   load_window_ms=4 * INTERVAL)
    assert engine.alerts == []
    # Same timeline, no horizon: the silence is an outage.
    assert drive(default_slos(), CALIBRATION + [[]] * 8).alerts != []


def test_load_window_anchor_skips_leading_idle_windows():
    engine = drive(default_slos(), [[]] * 3 + CALIBRATION + [[]] * 8,
                   load_window_ms=4 * INTERVAL)
    assert engine.alerts == []


# -- derived spec banks ------------------------------------------------------

def test_per_az_slos_only_for_multi_az():
    assert per_az_slos((1,)) == []
    specs = per_az_slos((1, 2, 3))
    assert [s.series for s in specs] == [
        "client.ops.az1", "client.ops.az2", "client.ops.az3"]
    assert all(s.kind == "throughput" for s in specs)


def test_component_liveness_floor_is_near_silence():
    specs = component_liveness_slos(["nn.handle.nn1", "nn.handle.nn2"])
    assert [s.name for s in specs] == [
        "liveness-nn.handle.nn1", "liveness-nn.handle.nn2"]
    assert all(s.drop_fraction == 0.1 for s in specs)


# -- shift invariance (hypothesis) -------------------------------------------

# A window is 0-12 ops drawn from a small latency/outcome alphabet; a
# timeline is 6-20 such windows.  Small alphabets keep shrinking effective.
_OP = st.tuples(st.sampled_from([0.2, 0.5, 8.0, 30.0]), st.booleans())
_TIMELINE = st.lists(st.lists(_OP, max_size=12), min_size=6, max_size=20)


def _normalized(engine, offset):
    return [
        (a.slo, a.fired_index - offset,
         None if a.resolved_index is None else a.resolved_index - offset,
         round(a.peak_burn, 9), a.windows, a.detail)
        for a in engine.alerts
    ]


@settings(max_examples=60, deadline=None)
@given(timeline=_TIMELINE, offset=st.integers(min_value=1, max_value=40))
def test_burn_rate_evaluation_is_window_shift_invariant(timeline, offset):
    base = drive(default_slos(), timeline, offset=0)
    shifted = drive(default_slos(), timeline, offset=offset)
    assert _normalized(shifted, offset) == _normalized(base, 0)
