"""Phase-attribution tests over a hand-built span tree."""

import pytest

from repro.obs import Tracer, breakdown_table, phase_breakdown


class _Clock:
    def __init__(self, now=0.0):
        self._now = now


def _build_trace():
    """One stat op: 10 ms total, 4 ms NN handler, 2 ms lock wait, 3 ms block."""
    t = Tracer()
    clock = t._env = _Clock(0.0)
    root = t.start("client.op", op="stat", retries=1)
    rpc = t.start("rpc.fs_op", parent=root, cross_az=True)
    clock._now = 1.0
    nn = t.start("nn.handle", parent=rpc)
    t.record("ndb.lock.wait", 2.0, 4.0, parent=nn)
    clock._now = 5.0
    t.finish(nn)
    t.finish(rpc)
    blk = t.start("rpc.read_block", parent=root, cross_az=False)
    clock._now = 8.0
    t.finish(blk)
    clock._now = 10.0
    t.finish(root)
    return t


def test_phase_breakdown_attribution():
    bd = phase_breakdown(_build_trace())
    assert set(bd) == {"stat"}
    stat = bd["stat"]
    assert stat.count == 1
    assert stat.total_ms == pytest.approx(10.0)
    assert stat.metadata_ms == pytest.approx(4.0)
    assert stat.lock_wait_ms == pytest.approx(2.0)
    assert stat.block_ms == pytest.approx(3.0)
    assert stat.other_ms == pytest.approx(1.0)  # total - attributed
    assert stat.cross_az_hops == 1  # only the cross_az-tagged rpc span
    assert stat.retries == 1


def test_unfinished_roots_are_not_counted():
    t = Tracer()
    t._env = _Clock(0.0)
    t.start("client.op", op="stat")  # in flight at run end
    assert phase_breakdown(t) == {}


def test_breakdown_table_renders():
    table = breakdown_table(_build_trace(), title="T")
    assert table.title == "T"
    assert table.rows[0][0] == "stat"
    rendered = table.render()
    assert "lock wait ms" in rendered and "stat" in rendered


def test_breakdown_table_empty_trace_notes_it():
    t = Tracer()
    t._env = _Clock(0.0)
    assert any("no finished" in n for n in breakdown_table(t).notes)
