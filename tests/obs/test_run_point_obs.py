"""End-to-end: run_point(obs=...) wires the whole observability layer."""

import pytest

from repro.experiments import RunConfig, run_point
from repro.obs import ObsContext, chrome_trace, phase_breakdown, validate_chrome_trace

_CFG = RunConfig(warmup_ms=3.0, window_ms=3.0)


@pytest.fixture(autouse=True)
def _pin_bench_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "1.0")


@pytest.fixture(scope="module")
def hopsfs_obs():
    obs = ObsContext()
    point = run_point("HopsFS-CL (3,3)", 3, config=_CFG, obs=obs)
    return point, obs


def test_obs_rides_back_on_result(hopsfs_obs):
    point, obs = hopsfs_obs
    assert point.extra["obs"] is obs
    assert len(obs.tracer.spans) > 0


def test_deployment_gauges_registered(hopsfs_obs):
    _point, obs = hopsfs_obs
    snap = obs.registry.snapshot()
    assert snap["gauges"]["nn.ops_served"] > 0
    for name in ("nn.ops_failed", "blocks.rereplications",
                 "ndb.active_transactions", "ndb.lock.timeouts",
                 "net.dropped_messages"):
        assert name in snap["gauges"]


def test_exported_trace_is_valid_and_has_breakdown(hopsfs_obs):
    _point, obs = hopsfs_obs
    doc = chrome_trace(obs.tracer)
    assert validate_chrome_trace(doc) == []
    bd = phase_breakdown(obs.tracer)
    assert bd, "no finished operations in trace"
    total_metadata = sum(b.metadata_ms for b in bd.values())
    assert total_metadata > 0


def test_cephfs_point_traces_mds_path():
    obs = ObsContext()
    run_point("CephFS", 3, config=RunConfig(warmup_ms=10.0, window_ms=5.0), obs=obs)
    names = {s.name for s in obs.tracer.spans}
    assert {"kclient.op", "rpc.mds_op", "mds.handle"} <= names
    snap = obs.registry.snapshot()
    assert "mds.ops_served" in snap["gauges"]
    assert validate_chrome_trace(chrome_trace(obs.tracer)) == []
