"""Metrics registry unit tests — bucket boundaries pinned exactly."""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_inc():
    c = Counter("rpcs")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert c.as_dict()["value"] == 5


def test_gauge_set_and_callable():
    g = Gauge("depth")
    g.set(3.0)
    assert g.value == 3.0
    state = {"n": 0}
    live = Gauge("live", fn=lambda: state["n"])
    state["n"] = 7
    assert live.value == 7  # read at access time, not at registration


class TestHistogramBuckets:
    """``le`` semantics: bucket i counts buckets[i-1] < v <= buckets[i]."""

    def test_value_on_boundary_lands_in_that_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)  # exactly on the 2.0 boundary -> bucket index 1
        assert h.bucket_counts == [0, 1, 0, 0]

    def test_value_below_first_boundary(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(0.5)
        h.observe(1.0)  # boundary inclusive
        assert h.bucket_counts == [2, 0, 0, 0]

    def test_value_between_boundaries(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        h.observe(3.9)
        assert h.bucket_counts == [0, 1, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(4.0)   # last boundary: still in-range
        h.observe(4.001)  # beyond: overflow
        assert h.bucket_counts == [0, 0, 1, 1]

    def test_default_buckets_cover_paper_range(self):
        assert DEFAULT_LATENCY_BUCKETS_MS[0] == 0.1
        assert DEFAULT_LATENCY_BUCKETS_MS[-1] == 5_000.0
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(DEFAULT_LATENCY_BUCKETS_MS)

    def test_stats(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 8.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(10.5)
        assert h.mean == pytest.approx(3.5)
        assert h.min == 0.5 and h.max == 8.0

    def test_quantile_returns_bucket_upper_bound(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for _ in range(9):
            h.observe(0.5)
        h.observe(50.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.99) == 100.0

    def test_quantile_empty(self):
        assert Histogram("lat").quantile(0.5) == 0.0


def test_registry_get_or_create_and_snapshot():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    reg.counter("x").inc(2)
    reg.gauge("g", fn=lambda: 42)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    assert reg.get("x").value == 2
    assert reg.get("missing") is None
    snap = reg.snapshot()
    assert snap["counters"] == {"x": 2}
    assert snap["gauges"] == {"g": 42}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["histograms"]["h"]["bucket_counts"] == [1, 0]


def test_counter_merge_commutative_associative():
    a, b, c = Counter("rpcs"), Counter("rpcs"), Counter("rpcs")
    a.inc(3)
    b.inc(5)
    c.inc(11)
    assert a.merge(b).value == b.merge(a).value == 8
    assert a.merge(b).merge(c).value == a.merge(b.merge(c)).value == 19
    # merge never mutates its inputs
    assert (a.value, b.value, c.value) == (3, 5, 11)


def test_gauge_merge_sums_levels_and_detaches_callables():
    a = Gauge("inflight")
    a.set(4.0)
    state = {"n": 9.0}
    b = Gauge("inflight", fn=lambda: state["n"])
    merged = a.merge(b)
    assert merged.value == 13.0
    # the merged gauge is value-backed: later live changes don't leak in
    state["n"] = 100.0
    assert merged.value == 13.0
    assert b.merge(a).value == 104.0  # reads live value at merge time
    ab, bc = a.merge(b), b.merge(a)
    assert ab.merge(Gauge("inflight")).value == ab.value
    assert bc.value == 104.0
