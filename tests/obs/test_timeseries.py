"""Windowed time-series hub: rolling, sealing, listeners, shard merge.

The hub is record-driven (no kernel process), so these tests drive it
directly with synthetic ``now`` values and check that windows seal at the
right boundaries, listeners see every sealed window in order, and the
shard-merge fold is commutative and associative like every other merge
in the repo (Histogram, MetricsCollector, TimelineCollector).
"""

import random

import pytest

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, Gauge, MetricsRegistry
from repro.obs.timeseries import OpWindow, TimeSeriesHub, WindowedSeries

BUCKETS = DEFAULT_LATENCY_BUCKETS_MS


# -- OpWindow ----------------------------------------------------------------

def test_op_window_observe_counts_errors_and_buckets():
    w = OpWindow(len(BUCKETS))
    w.observe(0.3, True, BUCKETS)
    w.observe(7.0, False, BUCKETS)
    w.observe(2.5, True, BUCKETS)   # boundary value lands in its own bucket (le)
    assert w.count == 3
    assert w.errors == 1
    assert w.total_ms == pytest.approx(9.8)
    assert w.max_ms == 7.0
    assert sum(w.bucket_counts) == 3
    assert w.bucket_counts[BUCKETS.index(0.5)] == 1   # 0.3 -> (0.25, 0.5]
    assert w.bucket_counts[BUCKETS.index(2.5)] == 1   # 2.5 -> (1.0, 2.5]
    assert w.bucket_counts[BUCKETS.index(10.0)] == 1  # 7.0 -> (5.0, 10.0]


def test_op_window_quantile_is_bucket_upper_bound():
    w = OpWindow(len(BUCKETS))
    for _ in range(99):
        w.observe(0.2, True, BUCKETS)
    w.observe(40.0, True, BUCKETS)
    assert w.quantile(0.5, BUCKETS) == 0.25
    assert w.quantile(0.999, BUCKETS) == 50.0
    assert OpWindow(len(BUCKETS)).quantile(0.99, BUCKETS) == 0.0


def test_op_window_overflow_quantile_reports_observed_max():
    w = OpWindow(len(BUCKETS))
    w.observe(9999.0, True, BUCKETS)  # beyond the last boundary
    assert w.bucket_counts[-1] == 1
    assert w.quantile(0.99, BUCKETS) == 9999.0


def test_op_window_merge_from_is_commutative():
    rng = random.Random(5)

    def sample():
        w = OpWindow(len(BUCKETS))
        for _ in range(50):
            w.observe(rng.uniform(0.05, 200.0), rng.random() > 0.1, BUCKETS)
        return w

    a, b = sample(), sample()
    ab = OpWindow(len(BUCKETS))
    ab.merge_from(a)
    ab.merge_from(b)
    ba = OpWindow(len(BUCKETS))
    ba.merge_from(b)
    ba.merge_from(a)
    assert ab.as_dict() == ba.as_dict()
    assert ab.count == a.count + b.count


# -- WindowedSeries ----------------------------------------------------------

def test_windowed_series_ring_buffer_bounds_memory():
    series = WindowedSeries("client.ops", "counter", capacity=4)
    for i in range(10):
        series.append(i, float(i))
    rows = list(series.rows)
    assert len(rows) == 4
    assert rows[0] == (6, 6.0)
    assert rows[-1] == (9, 9.0)


def test_windowed_series_as_dict_derives_p99_and_availability():
    series = WindowedSeries("client.ops", "op", capacity=8)
    w = OpWindow(len(BUCKETS))
    w.observe(0.2, True, BUCKETS)
    w.observe(0.2, False, BUCKETS)
    series.append(3, w)
    row = series.as_dict(10.0, BUCKETS)["rows"][0]
    assert row["t_ms"] == 30.0
    assert row["count"] == 2 and row["errors"] == 1
    assert row["availability"] == 0.5
    assert row["p99_ms"] == 0.25


# -- TimeSeriesHub: rolling and sealing --------------------------------------

def test_hub_seals_windows_behind_now():
    hub = TimeSeriesHub(interval_ms=10.0)
    hub.record_op(1, 0.5, True, now=3.0)
    hub.record_op(1, 0.5, True, now=7.0)
    assert hub.windows_sealed == 0          # window 0 still open
    hub.record_op(2, 1.0, False, now=25.0)  # crosses into window 2
    assert hub.windows_sealed == 2          # windows 0 and 1 sealed
    rows = dict(hub.series("client.ops").rows)
    assert rows[0].count == 2 and rows[0].errors == 0
    assert 1 not in rows                    # empty windows seal but hold no ops
    hub.finalize(25.0)
    rows = dict(hub.series("client.ops").rows)
    assert rows[2].count == 1 and rows[2].errors == 1


def test_hub_per_az_and_component_series():
    hub = TimeSeriesHub(interval_ms=10.0)
    hub.record_op(1, 0.5, True, now=1.0)
    hub.record_op(0, 0.5, True, now=2.0)    # ANY_AZ: aggregate only
    hub.component_sample("nn.handle", "nn1", 1, 0.2, True, now=3.0)
    hub.finalize(5.0)
    assert hub.series_names() == [
        "client.ops", "client.ops.az1", "nn.handle", "nn.handle.nn1"]
    assert dict(hub.series("client.ops").rows)[0].count == 2
    assert dict(hub.series("client.ops.az1").rows)[0].count == 1
    assert dict(hub.series("nn.handle.nn1").rows)[0].count == 1


def test_hub_listener_sees_every_sealed_window_in_order():
    hub = TimeSeriesHub(interval_ms=10.0)
    seen = []
    hub.subscribe(lambda index, start, end, ops, counters:
                  seen.append((index, start, end,
                               ops.get("client.ops").count if "client.ops" in ops else 0)))
    hub.record_op(1, 0.5, True, now=5.0)
    hub.record_op(1, 0.5, True, now=45.0)
    assert [s[0] for s in seen] == [0, 1, 2, 3]   # empty windows included
    assert seen[0] == (0, 0.0, 10.0, 1)
    assert seen[1][3] == 0


def test_hub_windowed_counters_and_gauges():
    registry = MetricsRegistry()
    state = {"inflight": 2.0}
    registry.gauge("client.inflight", fn=lambda: state["inflight"])
    hub = TimeSeriesHub(interval_ms=10.0)
    hub._registry = registry
    hub.inc("ndb.txn.committed", now=1.0)
    hub.inc("ndb.txn.committed", now=4.0, amount=2.0)
    hub.finalize(5.0)
    state["inflight"] = 7.0
    hub.inc("ndb.txn.committed", now=12.0)
    hub.finalize(15.0)
    assert dict(hub.series("ndb.txn.committed").rows) == {0: 3.0, 1: 1.0}
    assert dict(hub.series("client.inflight").rows) == {0: 2.0, 1: 7.0}


def test_hub_roll_bounds_pathological_idle_jump():
    hub = TimeSeriesHub(interval_ms=10.0)
    hub.record_op(1, 0.5, True, now=1.0)
    hub.roll(10.0 * (hub.MAX_SEAL_PER_ROLL + 500))
    assert hub.windows_sealed == hub.MAX_SEAL_PER_ROLL
    # cursor still lands on the target window: recording continues correctly
    hub.record_op(1, 0.5, True, now=10.0 * (hub.MAX_SEAL_PER_ROLL + 500) + 1)
    hub.finalize(10.0 * (hub.MAX_SEAL_PER_ROLL + 500) + 2)
    assert dict(hub.series("client.ops").rows)[hub.MAX_SEAL_PER_ROLL + 500].count == 1


def test_hub_rejects_bad_config():
    with pytest.raises(ValueError):
        TimeSeriesHub(interval_ms=0.0)
    with pytest.raises(ValueError):
        TimeSeriesHub(capacity=0)


# -- shard merge -------------------------------------------------------------

def _shard_hub(seed: int) -> TimeSeriesHub:
    # Dyadic latencies (multiples of 0.25) keep float sums exact, so the
    # associativity check can compare snapshots bitwise.  Real shard folds
    # run in sorted shard order precisely because float addition is only
    # associative up to rounding.
    rng = random.Random(seed)
    hub = TimeSeriesHub(interval_ms=10.0)
    now = 0.0
    for _ in range(80):
        now += rng.randrange(1, 12) * 0.25
        hub.record_op(rng.choice((1, 2, 3)), rng.randrange(1, 240) * 0.25,
                      rng.random() > 0.05, now)
        if rng.random() < 0.3:
            hub.inc("net.rpc.sent", now, amount=rng.randrange(1, 4))
    hub.finalize(now)
    return hub


def test_hub_merge_commutative():
    a, b = _shard_hub(1), _shard_hub(2)
    assert a.merge(b).snapshot() == b.merge(a).snapshot()


def test_hub_merge_associative():
    a, b, c = _shard_hub(1), _shard_hub(2), _shard_hub(3)
    assert a.merge(b).merge(c).snapshot() == a.merge(b.merge(c)).snapshot()


def test_hub_merge_adds_op_windows_index_wise():
    a, b = _shard_hub(1), _shard_hub(2)
    merged = a.merge(b)
    rows_a = dict(a.series("client.ops").rows)
    rows_b = dict(b.series("client.ops").rows)
    rows_m = dict(merged.series("client.ops").rows)
    assert set(rows_m) == set(rows_a) | set(rows_b)
    for index, window in rows_m.items():
        expected = (rows_a[index].count if index in rows_a else 0) + (
            rows_b[index].count if index in rows_b else 0)
        assert window.count == expected


def test_hub_merge_rejects_mismatched_grids():
    with pytest.raises(ValueError):
        TimeSeriesHub(interval_ms=10.0).merge(TimeSeriesHub(interval_ms=20.0))
