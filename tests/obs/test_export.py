"""Exporter tests: Chrome trace_event schema, JSONL, and the validator."""

import json

from repro.obs import (
    Tracer,
    chrome_trace,
    spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)


class _Clock:
    def __init__(self, now=0.0):
        self._now = now


def _sample_tracer():
    t = Tracer()
    t._env = _Clock(0.0)
    root = t.start("client.op", op="stat", host="client-1")
    t._env._now = 0.5
    rpc = t.start("rpc.fs_op", parent=root, host="client-1", cross_az=True)
    t._env._now = 1.0
    nn = t.start("nn.handle", parent=rpc, host="nn-1", op="stat")
    t._env._now = 3.0
    t.finish(nn)
    t.finish(rpc, ok=True)
    t._env._now = 3.5
    t.finish(root)
    return t, root, rpc, nn


def test_chrome_trace_schema_is_valid():
    t, *_ = _sample_tracer()
    doc = chrome_trace(t, metadata={"setup": "unit"})
    assert validate_chrome_trace(doc) == []
    assert doc["otherData"]["setup"] == "unit"


def test_chrome_trace_event_fields():
    t, root, rpc, nn = _sample_tracer()
    doc = chrome_trace(t)
    xs = {e["args"]["span_id"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    ev = xs[nn.span_id]
    assert ev["name"] == "nn.handle"
    assert ev["cat"] == "nn"
    assert ev["pid"] == "nn-1"
    assert ev["ts"] == 1000.0  # 1.0 ms -> us
    assert ev["dur"] == 2000.0
    assert ev["args"]["parent_id"] == rpc.span_id
    # All three spans of the request share one thread track (the root id).
    tids = {e["tid"] for e in xs.values()}
    assert tids == {f"req-{root.span_id}"}
    # One process_name metadata row per host.
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} == {"client-1", "nn-1"}


def test_unfinished_spans_are_excluded_and_not_referenced():
    t = Tracer()
    t._env = _Clock(0.0)
    root = t.start("client.op", op="stat", host="c")  # never finished
    child = t.start("rpc.fs_op", parent=root, host="c")
    t._env._now = 1.0
    t.finish(child)
    doc = chrome_trace(t)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert [e["args"]["span_id"] for e in xs] == [child.span_id]
    # The finished child must not point at the unexported root.
    assert "parent_id" not in xs[0]["args"]
    assert validate_chrome_trace(doc) == []


def test_validator_catches_breakage():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    bad = {
        "traceEvents": [
            {"ph": "X", "pid": "p"},                              # no name
            {"name": "a", "ph": "X", "pid": "p", "ts": -1.0,
             "dur": "x", "args": {}},                              # bad ts/dur
            {"name": "b", "ph": "X", "pid": "p", "ts": 0, "dur": 0,
             "args": {"span_id": 1, "parent_id": 99}},             # dangling parent
        ]
    }
    problems = validate_chrome_trace(bad)
    assert any("missing 'name'" in p for p in problems)
    assert any("'ts' negative" in p for p in problems)
    assert any("'dur' not numeric" in p for p in problems)
    assert any("parent_id 99" in p for p in problems)


def test_write_chrome_trace_and_jsonl(tmp_path):
    t, *_ = _sample_tracer()
    trace_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "spans.jsonl"
    write_chrome_trace(t, str(trace_path), metadata={"k": "v"})
    write_spans_jsonl(t, str(jsonl_path))
    doc = json.loads(trace_path.read_text())
    assert validate_chrome_trace(doc) == []
    lines = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
    assert len(lines) == len(t.spans) == len(spans_jsonl(t))
    assert [s["span_id"] for s in lines] == [s.span_id for s in t.spans]
    assert lines[0]["name"] == "client.op"
