"""Span tracer unit tests: ids, nesting, retrospective spans, views."""

from repro.obs import ObsContext, Span, Tracer
from repro.sim.kernel import Environment


class _Clock:
    """Minimal stand-in for an Environment: just the clock the tracer reads."""

    def __init__(self, now=0.0):
        self._now = now


def _tracer(now=0.0):
    t = Tracer()
    t._env = _Clock(now)
    return t


def test_span_ids_dense_and_ordered():
    t = _tracer()
    spans = [t.start(f"s{i}") for i in range(5)]
    assert [s.span_id for s in spans] == [1, 2, 3, 4, 5]
    assert t.spans == spans


def test_parent_child_nesting():
    t = _tracer()
    root = t.start("client.op", op="stat")
    child = t.start("rpc.fs_op", parent=root)
    grandchild = t.start("nn.handle", parent=child.span_id)  # raw-id form
    assert root.parent_id is None
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id
    index = t.children_index()
    assert index[None] == [root]
    assert index[root.span_id] == [child]
    assert index[child.span_id] == [grandchild]
    assert t.roots() == [root]


def test_orphan_parent_counts_as_root():
    t = _tracer()
    orphan = t.start("ndb.lock.wait", parent=9999)  # parent never recorded
    assert t.roots() == [orphan]


def test_start_finish_uses_simulated_clock():
    t = _tracer(now=10.0)
    span = t.start("op")
    assert span.start_ms == 10.0
    assert not span.finished
    assert span.duration_ms == 0.0
    t._env._now = 12.5
    t.finish(span, ok=True)
    assert span.end_ms == 12.5
    assert span.duration_ms == 2.5
    assert span.tags["ok"] is True
    assert t.finished_spans() == [span]


def test_record_retrospective_span():
    t = _tracer(now=50.0)
    span = t.record("ndb.lock.wait", 42.0, 49.0, mode="X")
    assert span.finished
    assert span.start_ms == 42.0 and span.end_ms == 49.0
    assert span.duration_ms == 7.0
    assert span.tags == {"mode": "X"}


def test_event_is_zero_duration():
    t = _tracer(now=7.0)
    span = t.event("election.leader_change", old=1, new=2)
    assert span.start_ms == span.end_ms == 7.0
    assert span.duration_ms == 0.0


def test_max_spans_drops_and_counts():
    t = Tracer(max_spans=2)
    t._env = _Clock()
    a = t.start("a")
    b = t.start("b")
    c = t.start("c")  # over budget: recorded nowhere
    assert len(t.spans) == 2
    assert t.dropped == 1
    assert c.span_id == 0  # sentinel id; finish() on it is still safe
    t.finish(c)
    assert t.spans == [a, b]


def test_as_dict_round_trips_fields():
    span = Span(3, 1, "rpc.tc_read", 1.0, 2.0, {"host": "dn1"})
    d = span.as_dict()
    assert d == {
        "span_id": 3,
        "parent_id": 1,
        "name": "rpc.tc_read",
        "start_ms": 1.0,
        "end_ms": 2.0,
        "tags": {"host": "dn1"},
    }


def test_obs_context_attach_detach():
    env = Environment()
    assert env.obs is None
    obs = ObsContext()
    obs.attach(env)
    assert env.obs is obs
    assert obs.tracer._env is env
    obs.detach()
    assert env.obs is None
