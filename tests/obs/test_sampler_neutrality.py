"""Schedule neutrality of the windowed sampler + SLO engine.

The time-series hub is dispatch-driven, never a kernel process: rolling
windows, sampling gauges and evaluating burn rates must not schedule
events, consume sequence numbers or draw from an RNG.  This test runs the
fault-free monitor scenario on every one of the nine paper setups twice —
telemetry off (plain ObsContext) and telemetry on (hub + full SLO bank) —
and requires the dispatch hashes to be bit-identical.

This is the monitored analogue of ``test_golden_schedule.py``; the run is
shortened (6 clients, 120ms of load) because only the schedule matters
here, not the alert outcomes.
"""

import pytest

from repro.chaos.scenarios import run_scenario
from repro.experiments.setups import SETUPS
from repro.obs import ObsContext
from repro.obs.detect import BASELINE_SCENARIO, monitor_slos
from repro.obs.slo import SloEngine
from repro.obs.timeseries import TimeSeriesHub

SEED = 7
CLIENTS = 6
LOAD_MS = 120.0


def _run(setup: str, telemetry: bool):
    obs = ObsContext()
    if telemetry:
        hub = TimeSeriesHub(interval_ms=10.0)
        obs.timeseries = hub
        SloEngine(monitor_slos(setup), hub, obs=obs, load_window_ms=LOAD_MS)
    result = run_scenario(BASELINE_SCENARIO, setup, seed=SEED, obs=obs,
                          clients=CLIENTS, load_ms=LOAD_MS)
    return result


@pytest.mark.parametrize("setup", sorted(SETUPS))
def test_sampler_on_off_dispatch_hash_identical(setup):
    off = _run(setup, telemetry=False)
    on = _run(setup, telemetry=True)
    assert on.dispatch_hash == off.dispatch_hash
    assert on.completed == off.completed
    assert on.failed == off.failed


def test_sampler_actually_sampled_something():
    # Guard against the neutrality test passing vacuously because the
    # instrumented sites never fed the hub.
    obs = ObsContext()
    hub = TimeSeriesHub(interval_ms=10.0)
    obs.timeseries = hub
    run_scenario(BASELINE_SCENARIO, "HopsFS-CL (3,3)", seed=SEED, obs=obs,
                 clients=CLIENTS, load_ms=LOAD_MS)
    names = hub.series_names()
    assert "client.ops" in names
    assert any(n.startswith("client.ops.az") for n in names)
    assert any(n.startswith("nn.handle.nn") for n in names)
    assert any(n.startswith("ndb.txn.") for n in names)
    assert any(n.startswith("net.rpc.") for n in names)
    assert hub.windows_sealed > 0
