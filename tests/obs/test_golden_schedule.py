"""Schedule neutrality: tracing must never perturb the event schedule.

The hard guarantee of the obs layer (see DESIGN.md "Observability") is
that attaching a tracer changes *nothing* about the simulation: the
kernel dispatches the exact same (time, priority, seq) sequence with
observability on and off.  These tests run the same deployment scenario
both ways with ``env.trace`` recording every dispatch, and require the
hashed schedules to be bit-identical — any instrumentation that consumes
an RNG draw, schedules an event, or burns a sequence number fails here.
"""

import hashlib

from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.metrics.collectors import MetricsCollector
from repro.ndb import NdbConfig
from repro.obs import ObsContext
from repro.workloads import ClosedLoopDriver, SpotifyWorkload, generate_namespace
from repro.workloads.namespace import install_hopsfs


def _traced_run(with_obs: bool, seed: int = 5):
    fs = build_hopsfs(
        num_namenodes=2,
        azs=(1, 2, 3),
        az_aware=True,
        ndb_config=NdbConfig(num_datanodes=6, replication=3, az_aware=True),
        hopsfs_config=HopsFsConfig(
            election_period_ms=50.0, op_cost_read_ms=0.02, op_cost_mutation_ms=0.04
        ),
        seed=seed,
    )
    env = fs.env
    env.trace = []  # record every dispatched (when, priority, seq)
    obs = None
    if with_obs:
        obs = ObsContext()
        obs.attach(env)
    namespace = generate_namespace(num_top_dirs=2, dirs_per_top=4, files_per_dir=8, seed=seed)
    install_hopsfs(fs, namespace)
    clients = [fs.client() for _ in range(8)]
    collector = MetricsCollector()
    collector.open_window(0)
    workload = SpotifyWorkload(namespace, seed=seed)
    driver = ClosedLoopDriver(env, clients, workload, collector)

    def scenario():
        yield from fs.await_election()
        driver.start()
        yield env.timeout(40)
        driver.stop()

    env.run_process(scenario(), until=120_000)
    collector.close_window(env.now)
    h = hashlib.sha256()
    for when, prio, seq in env.trace:
        h.update(f"{when!r}:{prio}:{seq}\n".encode())
    fingerprint = (
        len(env.trace),
        h.hexdigest(),
        collector.completed,
        collector.failed,
        repr(sum(collector.latencies_ms)),
        fs.network.traffic.messages,
        fs.network.traffic.total_bytes,
        tuple(sorted(fs.ndb.read_stats.by_replica.items())),
    )
    return fingerprint, obs


def test_tracing_is_schedule_neutral():
    base, _ = _traced_run(with_obs=False)
    traced, obs = _traced_run(with_obs=True)
    assert traced == base  # identical (time, priority, seq) dispatch trace
    assert len(obs.tracer.spans) > 0  # ...while actually having traced


def test_traced_run_captures_cross_layer_chain():
    """client.op -> rpc.fs_op -> nn.handle -> ndb.txn -> rpc.tc_* -> ndb.tc_*."""
    _fp, obs = _traced_run(with_obs=True)
    tracer = obs.tracer
    by_id = {s.span_id: s for s in tracer.spans}

    def chain(span):
        names = []
        while span is not None:
            names.append(span.name)
            span = by_id.get(span.parent_id)
        return list(reversed(names))

    chains = {tuple(chain(s)) for s in tracer.finished_spans()}
    assert ("client.op", "rpc.fs_op", "nn.handle", "ndb.txn", "rpc.tc_read",
            "ndb.tc_read") in chains
    # Commit leg of the same tree.
    assert ("client.op", "rpc.fs_op", "nn.handle", "ndb.txn", "rpc.tc_commit",
            "ndb.tc_commit") in chains
    # Spans nest in time within their parents.
    for span in tracer.finished_spans():
        parent = by_id.get(span.parent_id)
        if parent is not None and parent.finished and span.name != "ndb.lock.wait":
            assert span.start_ms >= parent.start_ms
            assert span.end_ms <= parent.end_ms + 1e-9


def test_traced_run_populates_registry():
    _fp, obs = _traced_run(with_obs=True)
    snap = obs.registry.snapshot()
    assert snap["counters"]["net.rpc.intra_az"] > 0
    assert snap["counters"]["net.rpc.cross_az"] > 0
    assert snap["counters"]["net.rpc.cross_az_bytes"] > 0


# ----------------------------------------------------------- chaos neutrality
def _chaos_fingerprint(with_obs: bool):
    from repro.chaos import run_scenario

    obs = ObsContext() if with_obs else None
    result = run_scenario(
        "network-partition",
        setup="hopsfs-cl-3-3",
        num_servers=2,
        seed=17,
        clients=6,
        load_ms=300.0,
        obs=obs,
    )
    return result, obs


def test_chaos_run_is_schedule_neutral_under_tracing():
    """Fault injection preserves the obs guarantee: tracing a chaos run
    (spans around every fault, per-action counters) must not move a single
    kernel dispatch — same (time, priority, seq) hash traced or untraced."""
    base, _ = _chaos_fingerprint(with_obs=False)
    traced, obs = _chaos_fingerprint(with_obs=True)
    assert traced.dispatch_hash == base.dispatch_hash
    assert traced.events == base.events
    assert traced.fault_trace == base.fault_trace
    assert (traced.completed, traced.failed) == (base.completed, base.failed)
    # ...while actually having traced the faults.
    fault_spans = [s for s in obs.tracer.spans if s.name == "chaos.fault"]
    assert {s.tags["action"] for s in fault_spans} == {
        "partition",
        "heal",
        "recover_all",
    }
    counters = obs.registry.snapshot()["counters"]
    assert counters["chaos.fault.partition"] == 1
