"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import InvalidPathError
from repro.hopsfs.pathlock import normalize_path, split_path
from repro.metrics.collectors import percentile
from repro.ndb import LockMode, LockTable, PartitionMap, stable_hash
from repro.ndb.cluster import az_assignment_for
from repro.sim import Environment
from repro.types import NodeAddress, NodeKind

# derandomize pins the draw sequence: CI failures reproduce locally and a
# run never depends on the wall clock or a fresh entropy source.
_settings = settings(
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
    derandomize=True,
)


def _nodes(n):
    return [NodeAddress(NodeKind.NDB_DATANODE, i) for i in range(1, n + 1)]


# ----------------------------------------------------------------- partitioning
@given(
    replication=st.integers(1, 4),
    groups=st.integers(1, 6),
    partitions=st.integers(1, 300),
    key=st.one_of(st.integers(), st.text(max_size=30), st.tuples(st.integers(), st.text(max_size=8))),
)
@_settings
def test_partition_placement_invariants(replication, groups, partitions, key):
    pm = PartitionMap(_nodes(replication * groups), replication, partitions)
    partition = pm.partition_of(key)
    assert 0 <= partition < partitions
    rs = pm.replicas(partition)
    # exactly R distinct replicas, all in one node group
    assert len(set(rs.all)) == replication
    group = pm.node_groups[pm.group_of(partition)]
    assert set(rs.all) == set(group)
    # chain starts at the primary
    assert rs.chain[0] == rs.primary


@given(st.data())
@_settings
def test_promotion_preserves_replica_count(data):
    replication = data.draw(st.integers(2, 3))
    groups = data.draw(st.integers(1, 4))
    pm = PartitionMap(_nodes(replication * groups), replication, 16)
    victims = data.draw(
        st.lists(st.sampled_from(pm.datanodes), max_size=replication - 1, unique=True)
    )
    for victim in victims:
        pm.mark_down(victim)
    for partition in range(16):
        group = pm.node_groups[pm.group_of(partition)]
        live_in_group = [n for n in group if pm.is_up(n)]
        if live_in_group:
            rs = pm.replicas(partition)
            assert set(rs.all) == set(live_in_group)
            assert pm.is_up(rs.primary)


@given(
    n_dn=st.sampled_from([4, 6, 12]),
    r=st.sampled_from([2, 3]),
    azs=st.lists(st.integers(1, 3), min_size=1, max_size=3, unique=True),
)
@_settings
def test_az_assignment_groups_never_collapse(n_dn, r, azs):
    if n_dn % r:
        return
    assignment = az_assignment_for(n_dn, r, azs)
    pm = PartitionMap(_nodes(n_dn), r, 8)
    by_addr = dict(zip(_nodes(n_dn), assignment))
    max_per_az = -(-r // len(azs))  # ceil
    for group in pm.node_groups:
        group_azs = [by_addr[m] for m in group]
        for az in set(group_azs):
            assert group_azs.count(az) <= max_per_az


@given(st.binary(max_size=64))
@_settings
def test_stable_hash_deterministic(payload):
    assert stable_hash(payload) == stable_hash(payload)
    assert stable_hash(payload) >= 0


# ------------------------------------------------------------------------ paths
_name = st.text(
    alphabet=st.characters(blacklist_characters="/\x00", blacklist_categories=("Cs",)),
    min_size=1,
    max_size=12,
).filter(lambda s: s not in (".", ".."))


@given(st.lists(_name, max_size=6))
@_settings
def test_split_normalize_roundtrip(components):
    path = "/" + "/".join(components)
    assert split_path(path) == components
    assert split_path(normalize_path(path)) == components
    # normalization is idempotent
    assert normalize_path(normalize_path(path)) == normalize_path(path)


@given(st.lists(_name, min_size=1, max_size=6))
@_settings
def test_redundant_slashes_collapse(components):
    messy = "/" + "//".join(components) + "/"
    assert split_path(messy) == components


@given(st.text(max_size=10))
@_settings
def test_relative_paths_always_rejected(text):
    if text.startswith("/"):
        return
    try:
        split_path(text)
        raised = False
    except InvalidPathError:
        raised = True
    assert raised


# ------------------------------------------------------------------ percentiles
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
@_settings
def test_percentile_bounds_and_monotonicity(values):
    values = sorted(values)
    p50 = percentile(values, 50)
    p90 = percentile(values, 90)
    p99 = percentile(values, 99)
    assert values[0] <= p50 <= values[-1]
    assert values[0] <= p99 <= values[-1]
    eps = 1e-9 * max(1.0, values[-1])
    assert p50 <= p90 + eps
    assert p90 <= p99 + eps
    assert percentile(values, 0) == values[0]
    assert percentile(values, 100) == values[-1]


# ----------------------------------------------------------------------- locks
@given(st.data())
@_settings
def test_lock_table_exclusivity_invariant(data):
    """Random lock/release schedules never grant X alongside another lock."""
    env = Environment()
    locks = LockTable(env, deadlock_timeout_ms=50)
    txids = list(range(1, 5))
    keys = ["a", "b"]
    steps = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from(txids),
                st.sampled_from(keys),
                st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE, "release"]),
            ),
            max_size=20,
        )
    )

    def actor(txid, key, mode):
        if mode == "release":
            locks.release_all(txid)
            return
            yield  # pragma: no cover
        try:
            yield locks.acquire(txid, key, mode)
        except Exception:
            pass

    def schedule():
        for txid, key, mode in steps:
            if mode == "release":
                locks.release_all(txid)
            else:
                env.process(actor(txid, key, mode))
            yield env.timeout(1)
            _check_invariant(locks)

    def _check_invariant(locks):
        for key, row in locks._rows.items():
            modes = list(row.holders.values())
            if LockMode.EXCLUSIVE in modes:
                assert len(modes) == 1, f"X lock shared on {key}: {row.holders}"

    env.run_process(schedule(), until=10_000)
    env.run(until=1_000)


# --------------------------------------------------------------------- subtree
@given(
    ranks=st.integers(1, 64),
    pinned=st.booleans(),
    path=st.lists(_name, min_size=1, max_size=5).map(lambda cs: "/" + "/".join(cs)),
)
@_settings
def test_subtree_ranks_in_range(ranks, pinned, path):
    from repro.cephfs import SubtreePartitioner

    p = SubtreePartitioner(ranks, pinned=pinned)
    assert 0 <= p.rank_of(path) < ranks
    assert 0 <= p.dir_rank(path) < ranks
    # a file and its directory listing agree on the serving rank
    assert p.rank_of(path + "/leaf") == p.dir_rank(path)


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=10))
@_settings
def test_subtree_override_resolution_terminates(overrides):
    from repro.cephfs import SubtreePartitioner

    p = SubtreePartitioner(8, pinned=False)
    for dead, takeover in overrides:
        p.install_override(dead, takeover)
    for rank in range(8):
        resolved = p._resolve_override(rank)  # must not loop forever
        assert 0 <= resolved < 8


# ----------------------------------------------------------------------- trace
@given(
    st.lists(
        st.sampled_from(
            ["mkdir", "createFile", "readFile", "deleteFile", "stat", "listDir", "exists"]
        ),
        min_size=1,
        max_size=20,
    )
)
@_settings
def test_trace_roundtrip(op_names):
    from repro.types import OpType
    from repro.workloads.trace import TraceWorkload, format_trace_line, parse_trace_line

    lines = []
    for i, name in enumerate(op_names):
        op = OpType(name)
        lines.append(format_trace_line(op, {"path": f"/p/f{i}"}))
    workload = TraceWorkload(lines, loop=False)
    assert len(workload) == len(op_names)
    for name in op_names:
        op, kwargs = workload.next_op()
        assert op is OpType(name)
        assert kwargs["path"].startswith("/p/f")
