"""Whole-stack determinism: identical seeds replay identically.

Changing any RNG usage pattern silently breaks reproducibility; this test
pins it down at the level of a full deployment run, including message
traces and read statistics — not just aggregate numbers.

The ``test_golden_*`` tests go further: they compare against
``golden/golden_kernel.json``, captured on the pre-refactor kernel, so the
fast-path kernel is provably schedule-identical to the naive one — same
(time, priority, seq) dispatch trace, same fig5/fig14 numbers.  To
re-capture the goldens after an *intentional* schedule change, run

    PYTHONPATH=src python tests/sim/test_determinism.py > \
        tests/sim/golden/golden_kernel.json

and say why in the commit message.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.experiments import RunConfig, run_point
from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.metrics.collectors import MetricsCollector
from repro.ndb import NdbConfig
from repro.workloads import ClosedLoopDriver, SpotifyWorkload, generate_namespace
from repro.workloads.namespace import install_hopsfs


def _run_once(seed):
    fs = build_hopsfs(
        num_namenodes=2,
        azs=(1, 2, 3),
        az_aware=True,
        ndb_config=NdbConfig(num_datanodes=6, replication=3, az_aware=True),
        hopsfs_config=HopsFsConfig(
            election_period_ms=50.0, op_cost_read_ms=0.02, op_cost_mutation_ms=0.04
        ),
        seed=seed,
    )
    env = fs.env
    namespace = generate_namespace(num_top_dirs=2, dirs_per_top=4, files_per_dir=8, seed=seed)
    install_hopsfs(fs, namespace)
    clients = [fs.client() for _ in range(8)]
    collector = MetricsCollector()
    collector.open_window(0)
    workload = SpotifyWorkload(namespace, seed=seed)
    driver = ClosedLoopDriver(env, clients, workload, collector)

    def scenario():
        yield from fs.await_election()
        driver.start()
        yield env.timeout(40)
        driver.stop()

    env.run_process(scenario(), until=120_000)
    collector.close_window(env.now)
    fingerprint = (
        collector.completed,
        collector.failed,
        round(sum(collector.latencies_ms), 6),
        fs.network.traffic.messages,
        fs.network.traffic.total_bytes,
        fs.ndb.read_stats.total_reads(),
        tuple(sorted(fs.ndb.read_stats.by_replica.items())),
    )
    return fingerprint


def test_identical_seed_identical_run():
    assert _run_once(5) == _run_once(5)


def test_different_seed_different_run():
    assert _run_once(5) != _run_once(6)


# -- golden comparisons against the pre-refactor kernel ---------------------

_GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_kernel.json"


@pytest.fixture(autouse=True)
def _pin_bench_scale(monkeypatch):
    # Golden runs were captured at scale 1; run_point windows scale with it.
    monkeypatch.setenv("REPRO_BENCH_SCALE", "1.0")


def _golden():
    with open(_GOLDEN_PATH) as fh:
        return json.load(fh)


def _traced_mini_run(seed=5):
    """The _run_once scenario, with the kernel's dispatch trace recorded."""
    fs = build_hopsfs(
        num_namenodes=2,
        azs=(1, 2, 3),
        az_aware=True,
        ndb_config=NdbConfig(num_datanodes=6, replication=3, az_aware=True),
        hopsfs_config=HopsFsConfig(
            election_period_ms=50.0, op_cost_read_ms=0.02, op_cost_mutation_ms=0.04
        ),
        seed=seed,
    )
    env = fs.env
    env.trace = []  # every dispatched (when, priority, seq); disables batching
    namespace = generate_namespace(num_top_dirs=2, dirs_per_top=4, files_per_dir=8, seed=seed)
    install_hopsfs(fs, namespace)
    clients = [fs.client() for _ in range(8)]
    collector = MetricsCollector()
    collector.open_window(0)
    workload = SpotifyWorkload(namespace, seed=seed)
    driver = ClosedLoopDriver(env, clients, workload, collector)

    def scenario():
        yield from fs.await_election()
        driver.start()
        yield env.timeout(40)
        driver.stop()

    env.run_process(scenario(), until=120_000)
    collector.close_window(env.now)
    h = hashlib.sha256()
    for when, prio, seq in env.trace:
        h.update(f"{when!r}:{prio}:{seq}\n".encode())
    fingerprint = {
        "completed": collector.completed,
        "failed": collector.failed,
        "latency_sum_ms": repr(sum(collector.latencies_ms)),
        "messages": fs.network.traffic.messages,
        "total_bytes": fs.network.traffic.total_bytes,
        "total_reads": fs.ndb.read_stats.total_reads(),
        "by_replica": sorted(fs.ndb.read_stats.by_replica.items()),
    }
    return {
        "trace_len": len(env.trace),
        "trace_sha256": h.hexdigest(),
        "fingerprint": fingerprint,
    }


def _mini_fig5_point():
    point = run_point("HopsFS-CL (3,3)", 3, config=RunConfig(warmup_ms=5.0, window_ms=5.0))
    return {
        "setup": point.setup,
        "servers": point.servers,
        "throughput_ops_s": repr(point.throughput_ops_s),
        "avg_latency_ms": repr(point.avg_latency_ms),
        "p50_ms": repr(point.p50_ms),
        "p99_ms": repr(point.p99_ms),
        "completed": point.completed,
        "failed": point.failed,
        "cross_az_mb": repr(point.resource.cross_az_mb),
    }


def _mini_fig14(read_backup=True):
    fs = build_hopsfs(
        num_namenodes=3,
        azs=(1, 2, 3),
        az_aware=True,
        ndb_config=NdbConfig(num_datanodes=6, replication=3, az_aware=True),
        hopsfs_config=HopsFsConfig(election_period_ms=100.0),
        seed=3,
    )
    if not read_backup:
        for tdef in fs.ndb.schema.tables():
            object.__setattr__(tdef, "read_backup", False)
    env = fs.env
    namespace = generate_namespace(num_top_dirs=2, dirs_per_top=4, files_per_dir=8, seed=3)
    install_hopsfs(fs, namespace)
    env.run_process(fs.await_election(), until=60_000)
    workload = SpotifyWorkload(namespace, seed=3)
    clients = [fs.client() for _ in range(24)]
    collector = MetricsCollector()
    collector.open_window(env.now)
    driver = ClosedLoopDriver(env, clients, workload, collector)
    driver.start()
    env.run(until=env.now + 30)
    driver.stop()
    collector.close_window(env.now)
    by_replica = sorted(fs.ndb.read_stats.by_replica.items())
    total = sum(v for _k, v in by_replica) or 1
    return {
        "read_backup": read_backup,
        "completed": collector.completed,
        "by_replica": by_replica,
        "primary_fraction": repr(
            sum(v for (_t, _p, role), v in by_replica if role == 0) / total
        ),
    }


def _canon(obj):
    # The golden file round-trips tuples through JSON as lists.
    return json.loads(json.dumps(obj, sort_keys=True, default=repr))


def test_golden_trace_hash_matches_pre_refactor_kernel():
    assert _canon(_traced_mini_run(5)) == _golden()["traced_run"]


def test_golden_fig5_point_matches_pre_refactor_kernel():
    assert _canon(_mini_fig5_point()) == _golden()["fig5_point"]


def test_golden_fig14_matches_pre_refactor_kernel():
    golden = _golden()
    assert _canon(_mini_fig14(True)) == golden["fig14_rb_on"]
    assert _canon(_mini_fig14(False)) == golden["fig14_rb_off"]


if __name__ == "__main__":
    # Re-capture entry point (see module docstring).
    import sys

    os.environ["REPRO_BENCH_SCALE"] = "1.0"
    golden = {
        "traced_run": _traced_mini_run(5),
        "fig5_point": _mini_fig5_point(),
        "fig14_rb_on": _mini_fig14(True),
        "fig14_rb_off": _mini_fig14(False),
    }
    json.dump(golden, sys.stdout, indent=2, sort_keys=True, default=repr)
    print()
