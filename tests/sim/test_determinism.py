"""Whole-stack determinism: identical seeds replay identically.

Changing any RNG usage pattern silently breaks reproducibility; this test
pins it down at the level of a full deployment run, including message
traces and read statistics — not just aggregate numbers.
"""

from repro.hopsfs import HopsFsConfig, build_hopsfs
from repro.metrics.collectors import MetricsCollector
from repro.ndb import NdbConfig
from repro.workloads import ClosedLoopDriver, SpotifyWorkload, generate_namespace
from repro.workloads.namespace import install_hopsfs


def _run_once(seed):
    fs = build_hopsfs(
        num_namenodes=2,
        azs=(1, 2, 3),
        az_aware=True,
        ndb_config=NdbConfig(num_datanodes=6, replication=3, az_aware=True),
        hopsfs_config=HopsFsConfig(
            election_period_ms=50.0, op_cost_read_ms=0.02, op_cost_mutation_ms=0.04
        ),
        seed=seed,
    )
    env = fs.env
    namespace = generate_namespace(num_top_dirs=2, dirs_per_top=4, files_per_dir=8, seed=seed)
    install_hopsfs(fs, namespace)
    clients = [fs.client() for _ in range(8)]
    collector = MetricsCollector()
    collector.open_window(0)
    workload = SpotifyWorkload(namespace, seed=seed)
    driver = ClosedLoopDriver(env, clients, workload, collector)

    def scenario():
        yield from fs.await_election()
        driver.start()
        yield env.timeout(40)
        driver.stop()

    env.run_process(scenario(), until=120_000)
    collector.close_window(env.now)
    fingerprint = (
        collector.completed,
        collector.failed,
        round(sum(collector.latencies_ms), 6),
        fs.network.traffic.messages,
        fs.network.traffic.total_bytes,
        fs.ndb.read_stats.total_reads(),
        tuple(sorted(fs.ndb.read_stats.by_replica.items())),
    )
    return fingerprint


def test_identical_seed_identical_run():
    assert _run_once(5) == _run_once(5)


def test_different_seed_different_run():
    assert _run_once(5) != _run_once(6)
