"""Tests for named RNG streams."""

from repro.sim import RngRegistry


def test_streams_independent_of_creation_order():
    a = RngRegistry(seed=1)
    b = RngRegistry(seed=1)
    # create streams in different orders
    a_x = a.stream("x")
    a_y = a.stream("y")
    b_y = b.stream("y")
    b_x = b.stream("x")
    assert [a_x.random() for _ in range(5)] == [b_x.random() for _ in range(5)]
    assert [a_y.random() for _ in range(5)] == [b_y.random() for _ in range(5)]


def test_streams_differ_by_name_and_seed():
    reg = RngRegistry(seed=1)
    assert reg.stream("a").random() != reg.stream("b").random()
    assert RngRegistry(seed=1).stream("a").random() != RngRegistry(seed=2).stream("a").random()


def test_stream_is_cached():
    reg = RngRegistry(seed=0)
    assert reg.stream("s") is reg.stream("s")


# -- sharded derivation ------------------------------------------------------

def _draws(rng, n=20):
    return [rng.random() for _ in range(n)]


def test_for_shard_streams_differ_between_shards():
    base = RngRegistry(seed=7)
    s0 = base.for_shard(0).stream("arrivals")
    s1 = base.for_shard(1).stream("arrivals")
    assert _draws(s0) != _draws(s1)


def test_for_shard_streams_differ_from_unsharded():
    base = RngRegistry(seed=7)
    sharded = base.for_shard(0).stream("arrivals")
    unsharded = RngRegistry(seed=7).stream("arrivals")
    assert _draws(sharded) != _draws(unsharded)


def test_for_shard_is_deterministic():
    a = RngRegistry(seed=3).for_shard(5).stream("ops")
    b = RngRegistry(seed=3).for_shard(5).stream("ops")
    assert _draws(a) == _draws(b)


def test_for_shard_does_not_perturb_unsharded_derivation():
    # Golden schedules depend on the unsharded key staying byte-identical.
    plain = RngRegistry(seed=11)
    assert plain._key("x") == "11:x"
    assert plain.for_shard(2)._key("x") == "11/2:x"


def test_shard_key_cannot_collide_with_unsharded_key():
    # seed is an integer, so an unsharded key never contains "/" before ":".
    sharded = RngRegistry(seed=1).for_shard(2)._key("n")
    for seed in range(50):
        assert RngRegistry(seed=seed)._key("n") != sharded
