"""Tests for named RNG streams."""

from repro.sim import RngRegistry


def test_streams_independent_of_creation_order():
    a = RngRegistry(seed=1)
    b = RngRegistry(seed=1)
    # create streams in different orders
    a_x = a.stream("x")
    a_y = a.stream("y")
    b_y = b.stream("y")
    b_x = b.stream("x")
    assert [a_x.random() for _ in range(5)] == [b_x.random() for _ in range(5)]
    assert [a_y.random() for _ in range(5)] == [b_y.random() for _ in range(5)]


def test_streams_differ_by_name_and_seed():
    reg = RngRegistry(seed=1)
    assert reg.stream("a").random() != reg.stream("b").random()
    assert RngRegistry(seed=1).stream("a").random() != RngRegistry(seed=2).stream("a").random()


def test_stream_is_cached():
    reg = RngRegistry(seed=0)
    assert reg.stream("s") is reg.stream("s")
