"""Unit tests for CorePool, Store, and Disk."""

import pytest

from repro.sim import CorePool, Disk, Environment, Store


def test_corepool_serializes_on_one_core():
    env = Environment()
    pool = CorePool(env, cores=1)
    done_times = []

    def job(cost):
        yield pool.submit(cost)
        done_times.append(env.now)

    for cost in (2, 3, 5):
        env.process(job(cost))
    env.run()
    assert done_times == [2, 5, 10]
    assert pool.busy_time == 10
    assert pool.jobs_done == 3


def test_corepool_parallelism_matches_cores():
    env = Environment()
    pool = CorePool(env, cores=3)
    done_times = []

    def job():
        yield pool.submit(4)
        done_times.append(env.now)

    for _ in range(6):
        env.process(job())
    env.run()
    assert done_times == [4, 4, 4, 8, 8, 8]
    assert pool.busy_time == 24


def test_corepool_utilization():
    env = Environment()
    pool = CorePool(env, cores=2)

    def job():
        yield pool.submit(5)

    env.process(job())
    env.run(until=10)
    # one of two cores busy for 5 of 10ms -> 25%
    assert pool.utilization(window=10) == pytest.approx(0.25)


def test_corepool_rejects_bad_args():
    env = Environment()
    with pytest.raises(ValueError):
        CorePool(env, cores=0)
    pool = CorePool(env, cores=1)
    with pytest.raises(ValueError):
        pool.submit(-1)


def test_corepool_queue_length_visible():
    env = Environment()
    pool = CorePool(env, cores=1)

    def producer():
        for _ in range(4):
            pool.submit(10)
        yield env.timeout(0)
        assert pool.in_service == 1
        assert pool.queue_length == 3

    env.run_process(producer())


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer():
        yield env.timeout(1)
        store.put("a")
        store.put("b")
        yield env.timeout(1)
        store.put("c")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == ["a", "b", "c"]


def test_store_get_before_put_blocks():
    env = Environment()
    store = Store(env)
    times = []

    def consumer():
        item = yield store.get()
        times.append((env.now, item))

    def producer():
        yield env.timeout(5)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times == [(5, "late")]


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(consumer("first"))
    env.process(consumer("second"))

    def producer():
        yield env.timeout(1)
        store.put(1)
        store.put(2)

    env.process(producer())
    env.run()
    assert got == [("first", 1), ("second", 2)]


def test_disk_bandwidth_and_queuing():
    env = Environment()
    disk = Disk(env, bandwidth_bytes_per_ms=100)
    done = []

    def writer(nbytes):
        yield disk.write(nbytes)
        done.append(env.now)

    env.process(writer(200))  # 2ms
    env.process(writer(300))  # queued: finishes at 5ms
    env.run()
    assert done == [2, 5]
    assert disk.bytes_written == 500
    assert disk.busy_time == pytest.approx(5)


def test_disk_idle_gap_not_counted_busy():
    env = Environment()
    disk = Disk(env, bandwidth_bytes_per_ms=100)

    def writer():
        yield disk.write(100)  # 1ms
        yield env.timeout(10)
        yield disk.write(100)  # 1ms more

    env.run_process(writer())
    assert disk.busy_time == pytest.approx(2)
    assert disk.utilization(window=env.now) == pytest.approx(2 / 12)


def test_disk_rejects_zero_bandwidth():
    env = Environment()
    with pytest.raises(ValueError):
        Disk(env, bandwidth_bytes_per_ms=0)
