"""Golden-schedule guard for the async group-commit opt-in.

``HopsFsConfig.async_commit=None`` (the default) must leave every one of
the nine evaluation setups bit-identical to the pre-async-commit tree:
same (time, priority, seq) dispatch trace, same completion counts.  The
goldens in ``golden/golden_setups.json`` were captured on the tree
*before* the group-commit path landed, so any event, RNG draw, or
ordering change the plumbing leaks into the default path fails here.

To re-capture after an *intentional* schedule change, run

    PYTHONPATH=src python tests/sim/test_async_golden_setups.py > \
        tests/sim/golden/golden_setups.json

and say why in the commit message.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.experiments.setups import SETUPS
from repro.metrics.collectors import MetricsCollector
from repro.workloads import ClosedLoopDriver, SpotifyWorkload, generate_namespace

_GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_setups.json"


@pytest.fixture(autouse=True)
def _pin_bench_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "1.0")


def _golden():
    with open(_GOLDEN_PATH) as fh:
        return json.load(fh)


def _mini_setup_trace(name):
    """One small traced run of ``name`` with the default (sync) config."""
    spec = SETUPS[name]
    adapter = spec.build(2, seed=11)
    env = adapter.env
    env.trace = []  # record every dispatch; disables send batching
    namespace = generate_namespace(
        num_top_dirs=2, dirs_per_top=4, files_per_dir=4, seed=11
    )
    adapter.install(namespace)
    env.run_process(adapter.ready(), until=env.now + 60_000)
    clients = adapter.make_clients(6)
    workload = SpotifyWorkload(namespace, seed=11, tag=name)
    collector = MetricsCollector()
    collector.open_window(env.now)
    driver = ClosedLoopDriver(env, clients, workload, collector)
    driver.start()
    env.run(until=env.now + 40.0)
    driver.stop()
    # Let in-flight ops finish so the trace tail is workload-, not
    # cutoff-, determined.
    env.run(until=env.now + 100.0)
    collector.close_window(env.now)
    h = hashlib.sha256()
    for when, prio, seq in env.trace:
        h.update(f"{when!r}:{prio}:{seq}\n".encode())
    return {
        "trace_len": len(env.trace),
        "trace_sha256": h.hexdigest(),
        "completed": collector.completed,
        "failed": collector.failed,
    }


@pytest.mark.parametrize("name", sorted(SETUPS))
def test_default_path_matches_pre_async_goldens(name):
    assert _mini_setup_trace(name) == _golden()[name]


if __name__ == "__main__":
    # Re-capture entry point (see module docstring).
    import sys

    os.environ["REPRO_BENCH_SCALE"] = "1.0"
    golden = {name: _mini_setup_trace(name) for name in sorted(SETUPS)}
    json.dump(golden, sys.stdout, indent=2, sort_keys=True)
    print()
