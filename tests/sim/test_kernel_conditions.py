"""Extra kernel coverage: condition failure modes, run() edge cases."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, SimulationError


def test_all_of_fails_fast_on_member_failure():
    env = Environment()
    good = env.timeout(10, value="slow")
    bad = env.event()

    def failer():
        yield env.timeout(2)
        bad.fail(ValueError("member died"))

    def waiter():
        with pytest.raises(ValueError):
            yield AllOf(env, [good, bad])
        return env.now

    env.process(failer())
    proc = env.process(waiter())
    env.run()
    assert proc.value == 2  # did not wait for the slow member


def test_any_of_fails_on_first_failure():
    env = Environment()
    slow = env.timeout(10)
    bad = env.event()

    def failer():
        yield env.timeout(1)
        bad.fail(RuntimeError("boom"))

    def waiter():
        with pytest.raises(RuntimeError):
            yield AnyOf(env, [slow, bad])
        return "handled"

    env.process(failer())
    proc = env.process(waiter())
    env.run()
    assert proc.value == "handled"


def test_condition_with_already_processed_events():
    env = Environment()
    t = env.timeout(1, value="early")

    def waiter():
        yield env.timeout(5)
        results = yield AllOf(env, [t])  # t processed long ago
        return list(results.values())

    assert env.run_process(waiter()) == ["early"]


def test_conditions_reject_mixed_environments():
    env_a, env_b = Environment(), Environment()
    t_a = env_a.timeout(1)
    t_b = env_b.timeout(1)
    with pytest.raises(SimulationError):
        AllOf(env_a, [t_a, t_b])


def test_run_until_in_the_past_rejected():
    env = Environment()
    env.run_process((env.timeout(10) for _ in range(1)).__iter__()) if False else None

    def advance():
        yield env.timeout(10)

    env.run_process(advance())
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_step_on_empty_queue_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_empty_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")


def test_env_helpers_all_of_any_of():
    env = Environment()

    def proc():
        r1 = yield env.all_of([env.timeout(1, value="a")])
        r2 = yield env.any_of([env.timeout(1, value="b"), env.timeout(9)])
        return list(r1.values()) + list(r2.values())

    assert env.run_process(proc()) == ["a", "b"]
