"""Unit tests for the DES kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt, SimulationError


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5)
        assert env.now == 5
        yield env.timeout(2.5)
        return env.now

    assert env.run_process(proc()) == 7.5
    assert env.now == 7.5


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        got = yield env.timeout(1, value="hello")
        return got

    assert env.run_process(proc()) == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(3)
        gate.succeed(42)

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(3, 42)]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter():
        with pytest.raises(ValueError):
            yield gate
        return "handled"

    def failer():
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    proc = env.process(waiter())
    env.process(failer())
    env.run()
    assert proc.value == "handled"


def test_unhandled_failure_propagates_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(4)
        return "child-result"

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    assert env.run_process(parent()) == (4, "child-result")


def test_waiting_on_finished_process_resumes_immediately():
    env = Environment()

    def child():
        yield env.timeout(1)
        return "done"

    def parent():
        proc = env.process(child())
        yield env.timeout(10)
        result = yield proc  # already processed
        return (env.now, result)

    assert env.run_process(parent()) == (10, "done")


def test_interrupt_delivers_cause():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            caught.append((env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(5)
        target.interrupt("wake-up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert caught == [(5, "wake-up")]


def test_interrupted_process_can_keep_running():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(7)
        return env.now

    def interrupter(target):
        yield env.timeout(3)
        target.interrupt()

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert target.value == 10


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_all_of_waits_for_all():
    env = Environment()

    def proc():
        t1 = env.timeout(3, value="a")
        t2 = env.timeout(7, value="b")
        results = yield AllOf(env, [t1, t2])
        return (env.now, sorted(results.values()))

    assert env.run_process(proc()) == (7, ["a", "b"])


def test_any_of_returns_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(3, value="fast")
        t2 = env.timeout(7, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return (env.now, list(results.values()))

    assert env.run_process(proc()) == (3, ["fast"])


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc():
        yield AllOf(env, [])
        return env.now

    assert env.run_process(proc()) == 0


def test_run_until_stops_clock():
    env = Environment()
    ticks = []

    def ticker():
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=5)
    assert env.now == 5
    assert ticks == [1, 2, 3, 4, 5]


def test_determinism_fifo_at_same_time():
    """Events scheduled for the same instant fire in schedule order."""
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in range(10):
        env.process(proc(tag))
    env.run()
    assert order == list(range(10))


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_yield_non_event_fails_process_cleanly():
    """Regression: the non-event error used to be thrown into the generator
    AND re-raised, corrupting the generator mid-unwind.  Now it is thrown
    once; if the generator does not convert it, the process fails and the
    generator is closed."""
    env = Environment()
    cleanup = []

    def bad():
        try:
            yield 42
        finally:
            cleanup.append("closed")

    proc = env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()
    assert cleanup == ["closed"]  # generator unwound exactly once
    assert proc.triggered and not proc._ok


def test_yield_non_event_generator_may_recover():
    """The throw happens inside the generator first, so it may convert the
    error into a normal return."""
    env = Environment()

    def survivor():
        try:
            yield "not an event"
        except SimulationError:
            return "recovered"

    assert env.run_process(survivor()) == "recovered"


def test_any_of_collects_same_step_triggered_events():
    """Regression: events that triggered in the same step but were not yet
    processed were silently dropped from the AnyOf result dict."""
    env = Environment()

    def proc():
        e1 = env.event()
        e2 = env.event()
        trigger = env.timeout(5)
        yield trigger
        # Both succeed at t=5: e2 is triggered-but-unprocessed when the
        # AnyOf fires on e1.
        e1.succeed("first")
        e2.succeed("second")
        results = yield AnyOf(env, [e1, e2])
        return (env.now, sorted(results.values()))

    assert env.run_process(proc()) == (5, ["first", "second"])


def test_any_of_excludes_pending_timeouts():
    """A Timeout is 'triggered' at creation but due in the future; AnyOf
    must not return it before its delay elapses."""
    env = Environment()

    def proc():
        fast = env.timeout(1, value="fast")
        slow = env.timeout(9, value="slow")
        results = yield AnyOf(env, [fast, slow])
        return (env.now, list(results.values()))

    assert env.run_process(proc()) == (1, ["fast"])


def test_run_process_detects_deadlock():
    env = Environment()

    def stuck():
        yield env.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        env.run_process(stuck())
