"""Property: crashes mid-group-commit never violate the durability horizon.

Hypothesis draws (workload seed, batch policy, crash point, victim) and
crashes either a namenode or an NDB datanode while async group-commit
batches are lingering, flushing and committing.  After recovery and a
drain, the durability-horizon invariant must hold: every committed batch
is fully applied, every aborted/lost batch is all-or-nothing, and no
fsync-confirmed horizon is uncommitted — alongside namespace integrity
and exactly-once.

Two test functions x 100 examples each = 200 generated crash cases, the
acceptance floor for this harness.  ``derandomize=True`` pins the draw
sequence; nothing here depends on the wall clock.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.invariants import (
    durability_horizon,
    exactly_once,
    namespace_integrity,
    no_stuck_state,
)
from repro.hopsfs import RobustConfig
from repro.hopsfs.groupcommit import AsyncCommitConfig

from ..hopsfs.conftest import make_fs

_settings = settings(
    max_examples=100,
    deadline=None,
    derandomize=True,  # CI-stable: the draw sequence is fixed
    suppress_health_check=[HealthCheck.too_slow],
)

_policy = st.tuples(
    st.floats(0.2, 5.0, allow_nan=False),  # linger_ms
    st.integers(1, 16),  # max_batch_ops
    st.integers(1, 4),  # max_inflight_batches
)
_crash_at = st.floats(2.0, 40.0, allow_nan=False)
_hold = st.floats(5.0, 40.0, allow_nan=False)


def _run_case(workload_seed, policy, crash_at, hold, victim_rank, crash_kind):
    linger_ms, max_batch_ops, max_inflight = policy
    fs = make_fs(
        num_namenodes=2,
        robust=RobustConfig(),
        async_commit=AsyncCommitConfig(
            linger_ms=linger_ms,
            max_batch_ops=max_batch_ops,
            max_inflight_batches=max_inflight,
        ),
        seed=workload_seed % 1000,
        # Fast reaping of transactions abandoned by the crash (the chaos
        # harness uses the same knob); the default 5s dwarfs the horizon.
        inactive_timeout_ms=120.0,
    )
    env = fs.env
    stop_ms = crash_at + hold + 30.0
    attempts = []

    def worker(client, rng, base):
        made = []
        n = 0
        while env.now < stop_ms:
            n += 1
            r = rng.random()
            try:
                if r < 0.45 or not made:
                    path = f"{base}/d{n}"
                    yield from client.mkdir(path)
                    made.append(path)
                elif r < 0.70:
                    path = f"{base}/f{n}"
                    yield from client.create(path, data=b"x" * rng.randrange(1, 64))
                    made.append(path)
                elif r < 0.85:
                    yield from client.delete(made.pop())
                else:
                    yield from client.fsync()
                attempts.append(True)
            except Exception:
                # Crash-window failures (unreachable NN, lost horizon,
                # deadline) are expected; the audit below is server-side.
                attempts.append(False)
            yield env.timeout(rng.uniform(0.1, 1.5))

    rng = random.Random(workload_seed)
    for i in range(4):
        client = fs.client()
        env.process(
            worker(client, random.Random(rng.randrange(2**31)), f"/w{i}"),
            name=f"crash-worker{i}",
        )

    def chaos():
        yield env.timeout(crash_at)
        if crash_kind == "nn":
            victim = fs.namenodes[victim_rank % len(fs.namenodes)]
            victim.shutdown()
            yield env.timeout(hold)
            victim.restart()
        else:
            addrs = sorted(fs.ndb.datanodes, key=str)
            victim = addrs[victim_rank % len(addrs)]
            fs.ndb.crash_datanode(victim, detect_now=True)
            yield env.timeout(hold)
            yield from fs.ndb.restart_datanode(victim)

    env.process(chaos(), name="chaos")
    # Load window plus a drain: lingering batches flush, the reaper clears
    # transactions the dead node abandoned, recovery copy completes.
    env.run(until=stop_ms + 400.0)

    assert attempts, "no client op ever ran"
    grouped = sum(nn.committer.ops_grouped for nn in fs.namenodes if nn.committer)
    assert grouped > 0, "the crash case never exercised group commit"
    for invariant in (durability_horizon, namespace_integrity, exactly_once, no_stuck_state):
        verdict = invariant(fs)
        assert verdict.ok, f"{verdict.name}: {verdict.detail}"


@given(
    workload_seed=st.integers(0, 2**20),
    policy=_policy,
    crash_at=_crash_at,
    hold=_hold,
    victim_rank=st.integers(0, 3),
)
@_settings
def test_namenode_crash_mid_group_commit(workload_seed, policy, crash_at, hold, victim_rank):
    _run_case(workload_seed, policy, crash_at, hold, victim_rank, "nn")


@given(
    workload_seed=st.integers(0, 2**20),
    policy=_policy,
    crash_at=_crash_at,
    hold=_hold,
    victim_rank=st.integers(0, 3),
)
@_settings
def test_ndb_datanode_crash_mid_group_commit(workload_seed, policy, crash_at, hold, victim_rank):
    _run_case(workload_seed, policy, crash_at, hold, victim_rank, "ndb")
