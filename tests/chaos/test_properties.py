"""Property: any crash/recover schedule short of quorum loss converges.

Hypothesis draws random fault schedules — per NDB node group at most one
member crashes (so no group ever loses all replicas), plus optional block
datanode and namenode outages — and every schedule must end with the full
invariant catalogue green after recovery and drain.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultSchedule, Scenario, run_scenario

_settings = settings(
    max_examples=5,
    deadline=None,
    derandomize=True,  # CI-stable: the draw sequence is fixed
    suppress_health_check=[HealthCheck.too_slow],
)

# One optional (crash_time, outage_len, member_rank) triple per fault site.
_crash = st.one_of(
    st.none(),
    st.tuples(
        st.floats(10.0, 120.0, allow_nan=False),
        st.floats(20.0, 100.0, allow_nan=False),
        st.integers(0, 7),
    ),
)


@given(group_crashes=st.tuples(_crash, _crash), bdn_crash=_crash, nn_crash=_crash)
@_settings
def test_random_sub_quorum_schedules_converge(group_crashes, bdn_crash, nn_crash):
    def build_schedule(target) -> FaultSchedule:
        schedule = FaultSchedule()
        groups = target.fs.ndb.partition_map.node_groups
        for group, crash in zip(groups, group_crashes):
            if crash is None:
                continue
            t, hold, rank = crash
            victim = group[rank % len(group)]
            schedule.crash_node(t, str(victim))
            schedule.recover_node(t + hold, str(victim))
        if bdn_crash is not None:
            t, hold, rank = bdn_crash
            victim = target.fs.block_datanodes[rank % len(target.fs.block_datanodes)]
            schedule.crash_node(t, str(victim.addr))
            schedule.recover_node(t + hold, str(victim.addr))
        if nn_crash is not None:
            t, hold, rank = nn_crash
            victim = target.fs.namenodes[rank % len(target.fs.namenodes)]
            schedule.crash_node(t, str(victim.addr))
            schedule.recover_node(t + hold, str(victim.addr))
        # Belt and braces: whatever is still down comes back before the end.
        schedule.recover_all(235.0)
        return schedule

    scenario = Scenario(
        name="property-crashes",
        description="hypothesis-drawn sub-quorum crash/recover schedule",
        schedule_fn=build_schedule,
        load_ms=260.0,
        drain_ms=350.0,
        clients=6,
        seed_large_files=2,
    )
    result = run_scenario(scenario, setup="hopsfs-cl-3-3", num_servers=2, seed=13)
    assert result.all_green, [str(v) for v in result.verdicts if not v.ok]
    assert result.completed > 100  # the cluster kept serving throughout
