"""The determinism contract: same schedule + seed => bit-identical run."""

from repro.chaos import run_scenario

_KW = dict(setup="hopsfs-cl-3-3", num_servers=2, seed=31, clients=6, load_ms=300.0)


def test_same_schedule_and_seed_reproduce_bitwise():
    a = run_scenario("az-outage-under-load", **_KW)
    b = run_scenario("az-outage-under-load", **_KW)
    assert a.dispatch_hash == b.dispatch_hash
    assert a.events == b.events
    assert a.fault_trace == b.fault_trace
    assert a.timeline == b.timeline
    assert (a.completed, a.failed) == (b.completed, b.failed)


def test_different_seed_diverges():
    a = run_scenario("az-outage-under-load", **_KW)
    c = run_scenario("az-outage-under-load", **dict(_KW, seed=32))
    assert a.dispatch_hash != c.dispatch_hash


def test_result_json_is_self_contained():
    import json

    result = run_scenario("az-outage-under-load", **_KW)
    doc = result.to_json()
    assert doc["all_green"] is True
    assert doc["scenario"] == "az-outage-under-load"
    assert {e["action"] for e in doc["schedule"]} == {"az_outage", "az_heal"}
    assert len(doc["fault_trace"]) == len(doc["schedule"])
    assert doc["dispatch_hash"] == result.dispatch_hash
    json.dumps(doc)  # plain data, no simulator objects


def test_render_mentions_faults_and_verdicts():
    result = run_scenario("az-outage-under-load", **_KW)
    text = result.render()
    assert "az_outage" in text
    assert "availability timeline" in text
    assert "[PASS] replica-consistency" in text
