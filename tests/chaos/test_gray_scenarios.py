"""Gray-failure scenarios: timeouts/hedging/shedding end to end.

These runs exercise the robust request path under chaos and pin the
determinism contract for it: retries, hedging, and admission control are
driven entirely by DES timers and named RNG streams, so the dispatch hash
is identical run-to-run and traced-vs-untraced.
"""

import pytest

from repro.chaos import SCENARIOS, run_scenario
from repro.chaos.invariants import deadline_compliance, exactly_once
from repro.hopsfs import RobustConfig
from repro.obs import ObsContext

_KW = dict(setup="hopsfs-cl-3-3", num_servers=2, seed=31, clients=6, load_ms=300.0)


def test_gray_scenarios_registered_with_robust_configs():
    for name in ("gray-degraded-link", "slow-az", "overload-burst"):
        assert name in SCENARIOS
        assert SCENARIOS[name].robust is not None
    # Legacy scenarios stay on the fail-stop path (their pinned chaos
    # fingerprints depend on it).
    for name in ("az-outage-under-load", "network-partition", "degraded-link"):
        assert SCENARIOS[name].robust is None


def test_gray_degraded_link_green_with_timeouts_firing():
    result = run_scenario("gray-degraded-link", **_KW)
    assert result.all_green, [str(v) for v in result.verdicts]
    target = result.extra["target"]
    assert sum(c.timeouts for c in target.clients) > 0
    # Late replies from the slow link were discarded, never delivered.
    assert target.fs.network.late_replies > 0
    names = [v.name for v in result.verdicts]
    assert "exactly-once" in names and "deadline-compliance" in names


def test_slow_az_green_and_hedging_fires_on_vanilla_hopsfs():
    # Vanilla HopsFS clients read cross-AZ (no AZ affinity), so a slow AZ
    # puts reads behind the degraded links — exactly what hedging is for.
    result = run_scenario(
        "slow-az", setup="hopsfs-3-3", num_servers=2, seed=31, clients=6,
        load_ms=300.0,
    )
    assert result.all_green, [str(v) for v in result.verdicts]
    target = result.extra["target"]
    assert sum(c.hedges for c in target.clients) > 0


def test_overload_burst_sheds_and_replays_exactly_once():
    result = run_scenario(
        "overload-burst", setup="hopsfs-cl-3-3", num_servers=2, seed=31,
        clients=48, load_ms=250.0,
    )
    assert result.all_green, [str(v) for v in result.verdicts]
    target = result.extra["target"]
    fs = target.fs
    assert sum(nn.ops_shed for nn in fs.namenodes) > 0
    assert sum(c.busy_rejections for c in target.clients) > 0
    # Mutations were retried under the burst, none applied twice.
    assert len(fs.mutation_ledger) > 0
    assert exactly_once(fs).ok
    assert deadline_compliance(target).ok


def test_gray_scenario_schedule_neutral_under_tracing():
    untraced = run_scenario("gray-degraded-link", **_KW)
    traced = run_scenario("gray-degraded-link", obs=ObsContext(), **_KW)
    again = run_scenario("gray-degraded-link", **_KW)
    assert untraced.dispatch_hash == traced.dispatch_hash == again.dispatch_hash
    assert untraced.events == traced.events
    assert (untraced.completed, untraced.failed) == (traced.completed, traced.failed)


def test_gray_scenarios_run_on_cephfs_with_vacuous_robust_invariants():
    result = run_scenario(
        "overload-burst", setup="cephfs", num_servers=2, seed=31, clients=12,
        load_ms=200.0,
    )
    assert result.all_green, [str(v) for v in result.verdicts]
    # CephFS never opts in: the deadline invariant is vacuously green.
    verdict = next(v for v in result.verdicts if v.name == "deadline-compliance")
    assert verdict.ok


def test_latency_recovers_after_degrade_partition_and_restart():
    """Satellite: degrade + partition + NN restart, then back to baseline."""
    from repro.chaos.targets import build_chaos_target
    from repro.workloads.namespace import generate_namespace

    target = build_chaos_target(
        "hopsfs-cl-3-3", num_servers=3, seed=7, robust=RobustConfig()
    )
    env = target.env
    namespace = generate_namespace(
        num_top_dirs=1, dirs_per_top=4, files_per_dir=4, seed=7
    )
    target.install(namespace)
    client = target.make_client()
    paths = list(namespace.files[:8])

    def measure():
        latencies = []
        for path in paths:
            start = env.now
            yield from client.stat(path)
            latencies.append(env.now - start)
        return sorted(latencies)[len(latencies) // 2]

    def scenario():
        yield from target.ready()
        baseline = yield from measure()

        # Compound gray+fail-stop episode: a slow link, a partition that
        # heals, and a metadata-server bounce.
        azs = target.azs
        target.network.degrade_link(azs[0], azs[-1], extra_ms=20.0)
        target.network.partition_azs((azs[-1],), tuple(a for a in azs if a != azs[-1]))
        yield env.timeout(60)
        target.network.heal_partitions()
        target.on_heal()
        victim = target.fs.namenodes[0]
        victim.shutdown()
        yield env.timeout(30)
        victim.restart()
        yield env.timeout(60)
        target.network.restore_links()
        yield env.timeout(100)  # settle: elections, breakers, reconnects

        recovered = yield from measure()
        return baseline, recovered

    baseline, recovered = env.run_process(scenario(), until=600_000)
    # Back to the pre-fault baseline (small absolute slack covers cache
    # warmth differences either way).
    assert recovered == pytest.approx(baseline, abs=0.5), (baseline, recovered)
