"""FaultInjector: schedule execution, relative timing, obs emission."""

from repro.chaos import FaultInjector, FaultSchedule, build_chaos_target, parse_node
from repro.obs import ObsContext


def _run_injector(schedule, obs=None, lead_ms=25.0):
    target = build_chaos_target("hopsfs-cl-3-3", num_servers=2, seed=7)
    env = target.env
    if obs is not None:
        obs.attach(env)
    injector = FaultInjector(target, schedule)

    def scenario():
        yield from target.ready()
        # Injector starts after election: schedule times are relative to here.
        yield env.timeout(lead_ms)
        yield injector.start()
        yield env.timeout(100)

    env.run_process(scenario(), until=120_000)
    return target, injector


def test_injector_executes_in_order_at_relative_times():
    schedule = FaultSchedule().crash_node(10, "ndbd5").recover_node(60, "ndbd5")
    target, injector = _run_injector(schedule)
    assert [action for _t, action, _d in injector.trace] == [
        "crash_node",
        "recover_node",
    ]
    crash_t, recover_t = (t for t, _a, _d in injector.trace)
    # Fired 10ms / 60ms after the injector started, not after t=0 — the
    # election lead time must have shifted both fire times.
    assert recover_t - crash_t >= 50.0
    assert crash_t >= 10.0 + 25.0
    assert target.is_running(parse_node("ndbd5"))


def test_injector_descriptions_name_the_nodes():
    schedule = FaultSchedule().az_outage(5, 3).az_heal(40, 3)
    _target, injector = _run_injector(schedule)
    down_detail = injector.trace[0][2]
    heal_detail = injector.trace[1][2]
    assert "az3" in down_detail and "ndbd" in down_detail
    assert "az3" in heal_detail


def test_injector_emits_spans_and_counters_when_traced():
    obs = ObsContext()
    schedule = FaultSchedule().crash_node(10, "ndbd5").recover_node(60, "ndbd5")
    _target, injector = _run_injector(schedule, obs=obs)
    fault_spans = [s for s in obs.tracer.spans if s.name == "chaos.fault"]
    assert len(fault_spans) == 2
    assert all(s.end_ms is not None for s in fault_spans)
    assert {s.tags["action"] for s in fault_spans} == {"crash_node", "recover_node"}
    counters = obs.registry.snapshot()["counters"]
    assert counters["chaos.fault.crash_node"] == 1
    assert counters["chaos.fault.recover_node"] == 1


def test_injector_emits_nothing_untraced():
    schedule = FaultSchedule().crash_node(10, "ndbd5").recover_node(60, "ndbd5")
    target, injector = _run_injector(schedule)
    assert target.env.obs is None
    assert len(injector.trace) == 2
