"""Property: any interleaved join/leave/preempt churn sequence converges.

Hypothesis draws random membership-churn schedules — adds into arbitrary
AZs, graceful decommissions, and spot-style preemptions, interleaved at
30ms spacing — subject only to "never drop the serving pool below two".
Every sequence must end with exactly one leader, every surviving view
equal to the running id set (the ``membership-convergence`` invariant),
and no decommissioned NN having lost an ack it gave
(``drained-ack-integrity``).  Plus: both shipped elastic scenarios are
schedule-deterministic at test-size parameters.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultSchedule, Scenario, run_scenario
from repro.hopsfs import ElasticConfig, RobustConfig

_settings = settings(
    max_examples=5,
    deadline=None,
    derandomize=True,  # CI-stable: the draw sequence is fixed
    suppress_health_check=[HealthCheck.too_slow],
)

# One churn step: join a drawn AZ, or retire/preempt a drawn rank of the
# currently-alive pool (the rank wraps, so every draw is meaningful).
_step = st.one_of(
    st.tuples(st.just("add"), st.integers(1, 3)),
    st.tuples(st.just("leave"), st.integers(0, 7)),
    st.tuples(st.just("preempt"), st.integers(0, 7)),
)

_ELASTIC = ElasticConfig(membership_refresh_ms=25.0, autoscale=False)


@given(steps=st.lists(_step, min_size=1, max_size=6))
@_settings
def test_random_churn_sequences_converge(steps):
    def build_schedule(target) -> FaultSchedule:
        schedule = FaultSchedule()
        # Predict the pool as the injector will evolve it: adds allocate
        # ids above the initial pool's maximum, in schedule order.
        alive = [str(nn.addr) for nn in target.fs.namenodes]
        next_id = max(nn.nn_id for nn in target.fs.namenodes) + 1
        t = 40.0
        for kind, arg in steps:
            if kind == "add":
                schedule.add_namenode(t, az=arg)
                alive.append(f"nn{next_id}")
                next_id += 1
            elif len(alive) > 2:  # keep the pool serving through drains
                victim = alive.pop(arg % len(alive))
                if kind == "leave":
                    schedule.decommission_namenode(t, victim)
                else:
                    schedule.preempt_namenode(t, victim, warning_ms=5.0)
            t += 30.0
        return schedule

    scenario = Scenario(
        name="property-churn",
        description="hypothesis-drawn join/leave/preempt interleaving",
        schedule_fn=build_schedule,
        load_ms=280.0,
        drain_ms=300.0,
        clients=6,
        seed_large_files=2,
        robust=RobustConfig(),
        elastic=_ELASTIC,
    )
    result = run_scenario(scenario, setup="hopsfs-cl-3-3", num_servers=3, seed=17)
    failures = [str(v) for v in result.verdicts if not v.ok]
    assert result.all_green, failures
    # The membership properties specifically — not just the catalogue.
    by_name = {v.name: v for v in result.verdicts}
    assert by_name["membership-convergence"].ok
    assert by_name["drained-ack-integrity"].ok
    assert result.completed > 100  # clients kept finding live NNs


_KW = dict(setup="hopsfs-cl-3-3", num_servers=3, seed=31, clients=6, load_ms=320.0)


def test_nn_churn_deterministic_and_green():
    a = run_scenario("nn-churn", **_KW)
    b = run_scenario("nn-churn", **_KW)
    assert a.all_green, [str(v) for v in a.verdicts if not v.ok]
    assert a.dispatch_hash == b.dispatch_hash
    assert a.elastic is not None
    assert a.elastic["reconfiguration_latency_ms"]["count"] >= 1
    assert a.elastic == b.elastic


def test_spot_preemption_storm_deterministic_and_green():
    a = run_scenario("spot-preemption-storm", **_KW)
    b = run_scenario("spot-preemption-storm", **_KW)
    assert a.all_green, [str(v) for v in a.verdicts if not v.ok]
    assert a.dispatch_hash == b.dispatch_hash
    # The autoscaler's replacement floor refilled preempted capacity.
    assert a.elastic is not None
    assert a.elastic["scale_ups"] >= 1
    assert a.elastic == b.elastic
