"""The invariant catalogue: green on health, red on planted corruption."""

import pytest

from repro.chaos import build_chaos_target, verify_target
from repro.chaos.invariants import (
    block_az_coverage,
    namespace_integrity,
    no_stuck_state,
    replica_consistency,
)
from repro.hopsfs.metadata import InodeRow
from repro.ndb.datanode import _TcTxn
from repro.workloads import generate_namespace


@pytest.fixture(scope="module")
def ready_target():
    """One settled HopsFS-CL target shared by the whole module.

    Each test plants its own corruption and must undo it before returning.
    """
    target = build_chaos_target("hopsfs-cl-3-3", num_servers=2, seed=11)
    namespace = generate_namespace(num_top_dirs=1, dirs_per_top=3, files_per_dir=3, seed=11)
    target.install(namespace)

    def settle():
        yield from target.ready()
        yield from target.seed_blocks(2)

    target.env.run_process(settle(), until=60_000)
    return target


def test_catalogue_green_on_healthy_cluster(ready_target):
    verdicts = verify_target(ready_target)
    assert [v.name for v in verdicts] == [
        "replica-consistency",
        "namespace-integrity",
        "no-stuck-state",
        "block-durability",
        "block-az-coverage",
        "exactly-once",
        "durability-horizon",
        "drained-ack-integrity",
        "membership-convergence",
        "listing-consistency",
        "deadline-compliance",
    ]
    assert all(v.ok for v in verdicts), [str(v) for v in verdicts]


def test_orphan_inode_fails_namespace_integrity(ready_target):
    fs = ready_target.fs
    dn = next(d for d in fs.ndb.datanodes.values() if d.running)
    ghost = InodeRow(id=987654, parent_id=999999, name="ghost", is_dir=False)
    dn.store.load("inodes", ghost.pk, ghost.parent_id, ghost)
    try:
        verdict = namespace_integrity(fs)
        assert not verdict.ok
        assert "987654" in verdict.detail
    finally:
        from repro.ndb.schema import TOMBSTONE

        dn.store.load("inodes", ghost.pk, ghost.parent_id, TOMBSTONE)
    assert namespace_integrity(fs).ok


def test_diverging_replica_fails_replica_consistency(ready_target):
    fs = ready_target.fs
    group = fs.ndb.partition_map.node_groups[0]
    lone = fs.ndb.datanodes[group[0]]
    row = InodeRow(id=13131, parent_id=1, name="split-brain", is_dir=False)
    lone.store.load("inodes", row.pk, row.parent_id, row)
    try:
        verdict = replica_consistency(fs)
        assert not verdict.ok
        assert "inodes" in verdict.detail
    finally:
        from repro.ndb.schema import TOMBSTONE

        lone.store.load("inodes", row.pk, row.parent_id, TOMBSTONE)
    assert replica_consistency(fs).ok


def test_stale_prepared_row_fails_no_stuck_state(ready_target):
    fs = ready_target.fs
    dn = next(d for d in fs.ndb.datanodes.values() if d.running)
    dn.store.prepare(424242, "inodes", (1, "zombie"), 1, "v")
    try:
        verdict = no_stuck_state(fs)
        assert not verdict.ok
        assert "stale prepared" in verdict.detail
    finally:
        dn.store.abort_all(424242)
    assert no_stuck_state(fs).ok


def test_live_transaction_state_is_not_stuck(ready_target):
    """In-flight 2PC state (e.g. election commits) must not trip the check."""
    fs = ready_target.fs
    dn = next(d for d in fs.ndb.datanodes.values() if d.running)
    txid = 535353
    dn.store.prepare(txid, "inodes", (1, "in-flight"), 1, "v")
    dn.txns[txid] = _TcTxn(txid=txid, client_az=dn.az)
    dn.txns[txid].last_active_ms = fs.env.now
    try:
        assert no_stuck_state(fs).ok
    finally:
        dn.store.abort_all(txid)
        del dn.txns[txid]


def test_single_az_block_fails_az_coverage(ready_target):
    fs = ready_target.fs
    bdn = fs.block_datanodes[0]
    bdn.blocks[71717171] = 1024  # a block nobody else replicates
    try:
        verdict = block_az_coverage(fs)
        assert not verdict.ok
        assert "71717171" in verdict.detail
    finally:
        del bdn.blocks[71717171]
    assert block_az_coverage(fs).ok
