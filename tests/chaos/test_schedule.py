"""FaultSchedule / FaultEvent: validation, ordering, round-trips."""

import pytest

from repro.chaos import ACTIONS, FaultEvent, FaultSchedule, parse_node
from repro.errors import ReproError
from repro.types import NodeAddress, NodeKind


# ------------------------------------------------------------------ parse_node
def test_parse_node_kinds():
    assert parse_node("ndbd3") == NodeAddress(NodeKind.NDB_DATANODE, 3)
    assert parse_node("nn2") == NodeAddress(NodeKind.NAMENODE, 2)
    assert parse_node("mds1") == NodeAddress(NodeKind.MDS, 1)
    assert parse_node("osd12") == NodeAddress(NodeKind.OSD, 12)
    assert parse_node("dn4") == NodeAddress(NodeKind.DATANODE, 4)


def test_parse_node_prefers_longest_prefix():
    # "ndb_mgmd1" must not parse as NDB_DATANODE ("ndbd") or similar.
    assert parse_node("ndb_mgmd1") == NodeAddress(NodeKind.NDB_MGMT, 1)


@pytest.mark.parametrize("bad", ["", "ndbd", "7", "ndbd1x", "what3ver"])
def test_parse_node_rejects_garbage(bad):
    with pytest.raises(ReproError):
        parse_node(bad)


# ------------------------------------------------------------------ validation
def test_unknown_action_rejected():
    with pytest.raises(ReproError):
        FaultEvent(0.0, "set_on_fire").validate()


def test_negative_time_rejected():
    with pytest.raises(ReproError):
        FaultEvent(-1.0, "heal").validate()


@pytest.mark.parametrize("action", ["crash_node", "recover_node"])
def test_node_actions_need_a_parseable_node(action):
    with pytest.raises(ReproError):
        FaultEvent(0.0, action).validate()
    with pytest.raises(ReproError):
        FaultEvent(0.0, action, node="bogus").validate()
    FaultEvent(0.0, action, node="ndbd1").validate()


def test_az_actions_need_az():
    with pytest.raises(ReproError):
        FaultEvent(0.0, "az_outage").validate()
    FaultEvent(0.0, "az_outage", az=2).validate()


def test_partition_groups_must_be_disjoint_and_nonempty():
    with pytest.raises(ReproError):
        FaultEvent(0.0, "partition", groups=((1,), (1, 2))).validate()
    with pytest.raises(ReproError):
        FaultEvent(0.0, "partition", groups=((), (2,))).validate()
    FaultEvent(0.0, "partition", groups=((1,), (2, 3))).validate()


def test_degrade_link_needs_positive_extra():
    with pytest.raises(ReproError):
        FaultEvent(0.0, "degrade_link", az_pair=(1, 2)).validate()
    FaultEvent(0.0, "degrade_link", az_pair=(1, 2), extra_ms=3.0).validate()


def test_builders_cover_every_action():
    schedule = (
        FaultSchedule()
        .crash_node(1, "ndbd1")
        .recover_node(2, "ndbd1")
        .az_outage(3, 1)
        .az_heal(4, 1)
        .partition(5, (1,), (2, 3))
        .heal(6)
        .degrade_link(7, 1, 3, extra_ms=2.0)
        .restore_links(8)
        .recover_all(9)
        .add_namenode(10, az=2)
        .decommission_namenode(11, "nn1")
        .preempt_namenode(12, "nn2", warning_ms=5.0)
    )
    assert {e.action for e in schedule} == ACTIONS


# -------------------------------------------------------------------- ordering
def test_events_sorted_by_time_insertion_order_breaks_ties():
    schedule = (
        FaultSchedule()
        .heal(50)
        .crash_node(10, "ndbd2")
        .recover_all(50)  # same instant as heal: must stay after it
        .az_outage(20, 3)
    )
    assert [(e.at_ms, e.action) for e in schedule.events] == [
        (10, "crash_node"),
        (20, "az_outage"),
        (50, "heal"),
        (50, "recover_all"),
    ]
    assert schedule.end_ms() == 50
    assert len(schedule) == 4


# ----------------------------------------------------------------- round trips
def test_dict_round_trip_preserves_schedule():
    schedule = (
        FaultSchedule()
        .az_outage(60, 3)
        .partition(80, (3,), (1, 2))
        .degrade_link(90, 1, 2, extra_ms=5.0)
        .az_heal(220, 3)
        .heal(260)
    )
    back = FaultSchedule.from_dicts(schedule.to_dicts())
    assert back.events == schedule.events
    assert back.fingerprint() == schedule.fingerprint()


def test_from_dicts_validates():
    with pytest.raises(ReproError):
        FaultSchedule.from_dicts([{"at_ms": 0, "action": "nope"}])


def test_fingerprint_sensitive_to_content():
    a = FaultSchedule().az_outage(60, 3)
    b = FaultSchedule().az_outage(60, 2)
    c = FaultSchedule().az_outage(61, 3)
    assert a.fingerprint() == FaultSchedule().az_outage(60, 3).fingerprint()
    assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


def test_describe_is_human_readable():
    assert "ndbd5" in FaultEvent(0, "crash_node", node="ndbd5").describe()
    assert "az3" in FaultEvent(0, "az_outage", az=3).describe()
    assert "+5.0ms" in FaultEvent(0, "degrade_link", az_pair=(1, 2), extra_ms=5.0).describe()
