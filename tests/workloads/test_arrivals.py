"""Zipf population sampler and aggregated arrival engine."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.metrics.collectors import MetricsCollector
from repro.sim import Environment, RngRegistry
from repro.types import OpType
from repro.workloads import AggregatedArrivalEngine, ZipfPopulation


# -- ZipfPopulation ----------------------------------------------------------

def test_zipf_deterministic_under_fixed_seed():
    a = ZipfPopulation(1_000_000, 1.05, random.Random(42))
    b = ZipfPopulation(1_000_000, 1.05, random.Random(42))
    assert [a.sample() for _ in range(2000)] == [b.sample() for _ in range(2000)]


def test_zipf_seed_changes_sequence():
    a = ZipfPopulation(10_000, 1.05, random.Random(1))
    b = ZipfPopulation(10_000, 1.05, random.Random(2))
    assert [a.sample() for _ in range(200)] != [b.sample() for _ in range(200)]


def test_zipf_top_one_percent_share_matches_closed_form():
    n = 10_000
    pop = ZipfPopulation(n, 1.05, random.Random(7))
    draws = 60_000
    top = n // 100
    hits = sum(1 for _ in range(draws) if pop.sample() < top)
    expected = pop.expected_top_share(top)
    observed = hits / draws
    # The top 1% must carry hotspot-heavy traffic, and match the harmonic
    # closed form within sampling noise (3-sigma-ish at 60k draws).
    assert expected > 0.4
    assert observed == pytest.approx(expected, abs=0.02)


def test_zipf_rank_one_is_hottest():
    pop = ZipfPopulation(1000, 1.2, random.Random(3))
    counts = [0] * 1000
    for _ in range(30_000):
        counts[pop.sample()] += 1
    assert counts[0] == max(counts)
    assert counts[0] / 30_000 == pytest.approx(
        pop.expected_top_share(1), abs=0.02
    )


def test_zipf_expected_top_share_is_monotone_and_bounded():
    pop = ZipfPopulation(5000, 1.05, random.Random(0))
    shares = [pop.expected_top_share(m) for m in (1, 10, 100, 5000)]
    assert shares == sorted(shares)
    assert shares[-1] == pytest.approx(1.0)


def test_zipf_rejects_bad_parameters():
    with pytest.raises(ReproError):
        ZipfPopulation(0, 1.0, random.Random(0))
    with pytest.raises(ReproError):
        ZipfPopulation(10, 0.0, random.Random(0))
    with pytest.raises(ReproError):
        ZipfPopulation(10, -1.0, random.Random(0))


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=2_000_000),
    s=st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_zipf_ids_always_in_range(n, s, seed):
    pop = ZipfPopulation(n, s, random.Random(seed))
    for _ in range(50):
        k = pop.sample()
        assert 0 <= k < n
        assert isinstance(k, int)


def test_zipf_single_client_population():
    pop = ZipfPopulation(1, 1.05, random.Random(0))
    assert all(pop.sample() == 0 for _ in range(100))


# -- AggregatedArrivalEngine -------------------------------------------------

class _FakeStub:
    """Client stub that sleeps a fixed service time per op."""

    def __init__(self, env, service_ms=0.5, fail_with=None):
        self.env = env
        self.service_ms = service_ms
        self.fail_with = fail_with
        self.ops = 0
        self.last_op_failures = 0

    def op(self, op, **kwargs):
        yield self.env.timeout(self.service_ms)
        self.ops += 1
        if self.fail_with is not None:
            raise self.fail_with


class _FakeWorkload:
    def __init__(self):
        self.client_ids = []

    def next_op(self, client_id=None):
        self.client_ids.append(client_id)
        return OpType.STAT, {"path": "/x"}


def _engine(env, *, stubs=None, detail_every=4, max_inflight=64,
            rate_per_ms=10.0, population=1000, shard=0):
    rng = RngRegistry(seed=0).for_shard(shard)
    collector = MetricsCollector()
    collector.open_window(0.0)
    workload = _FakeWorkload()
    engine = AggregatedArrivalEngine(
        env,
        stubs if stubs is not None else [_FakeStub(env)],
        workload,
        collector,
        ZipfPopulation(population, 1.05, rng.stream("population")),
        rate_per_ms,
        rng.stream("arrivals"),
        detail_every=detail_every,
        max_inflight=max_inflight,
    )
    return engine, collector, workload


def test_engine_accounts_arrivals_and_details():
    env = Environment()
    engine, collector, workload = _engine(env)
    engine.start()
    env.run(until=100.0)
    engine.stop()
    env.run(until=110.0)
    # ~10/ms * 100ms = ~1000 arrivals, 1-in-4 detailed.
    assert 800 < engine.arrivals < 1200
    assert engine.detailed > 0
    assert engine.detailed <= engine.arrivals // 4 + 1
    assert collector.completed == engine.detailed
    assert len(engine.distinct_clients) > 1
    assert engine.max_client_id == max(engine.distinct_clients)
    # every detailed op carried a sampled client identity
    assert all(cid is not None for cid in workload.client_ids)


def test_engine_sheds_when_inflight_cap_hit():
    env = Environment()
    # Service time far longer than the run: every detailed op stays in
    # flight, so the cap (1) forces shedding after the first sample.
    slow = _FakeStub(env, service_ms=10_000.0)
    engine, _, _ = _engine(env, stubs=[slow], detail_every=2, max_inflight=1)
    engine.start()
    env.run(until=50.0)
    assert engine.inflight == 1
    assert engine.shed > 0
    # offered load is still fully accounted even when detail is shed
    assert engine.offered_ops() == engine.arrivals


def test_engine_records_expected_errors_as_failures():
    from repro.errors import FsError

    env = Environment()
    failing = _FakeStub(env, fail_with=FsError("boom"))
    engine, collector, _ = _engine(env, stubs=[failing], detail_every=2)
    engine.start()
    env.run(until=50.0)
    engine.stop()
    env.run(until=60.0)
    assert collector.failed > 0
    assert collector.completed == 0
    assert engine.inflight == 0


def test_engine_round_robins_stubs():
    env = Environment()
    stubs = [_FakeStub(env) for _ in range(3)]
    engine, _, _ = _engine(env, stubs=stubs, detail_every=1)
    engine.start()
    env.run(until=30.0)
    engine.stop()
    env.run(until=40.0)
    assert all(s.ops > 0 for s in stubs)
    assert max(s.ops for s in stubs) - min(s.ops for s in stubs) <= 1


def test_engine_rejects_bad_config():
    env = Environment()
    rng = RngRegistry(seed=0)
    pop = ZipfPopulation(10, 1.0, rng.stream("p"))
    collector = MetricsCollector()
    with pytest.raises(ReproError):
        AggregatedArrivalEngine(
            env, [], _FakeWorkload(), collector, pop, 1.0, rng.stream("a")
        )
    with pytest.raises(ReproError):
        AggregatedArrivalEngine(
            env, [_FakeStub(env)], _FakeWorkload(), collector, pop, 0.0,
            rng.stream("a"),
        )
    with pytest.raises(ReproError):
        AggregatedArrivalEngine(
            env, [_FakeStub(env)], _FakeWorkload(), collector, pop, 1.0,
            rng.stream("a"), detail_every=0,
        )


# -- shard independence (regression) -----------------------------------------

def _shard_arrival_trace(shard_id, n=64):
    """First ``n`` (gap, client_id) pairs shard ``shard_id`` would draw."""
    rng = RngRegistry(seed=0).for_shard(shard_id)
    pop = ZipfPopulation(100_000, 1.05, rng.stream("population"))
    gaps = rng.stream("arrivals")
    return [(gaps.expovariate(1.0), pop.sample()) for _ in range(n)]


def test_two_shards_never_produce_identical_arrival_sequences():
    traces = {sid: _shard_arrival_trace(sid) for sid in range(8)}
    for a in range(8):
        for b in range(a + 1, 8):
            assert traces[a] != traces[b], f"shards {a} and {b} collided"


def test_shard_arrival_sequence_is_reproducible():
    assert _shard_arrival_trace(3) == _shard_arrival_trace(3)
