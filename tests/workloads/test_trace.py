"""Trace record/replay tests."""

import pytest

from repro.errors import ReproError
from repro.types import OpType
from repro.workloads.trace import (
    TraceWorkload,
    format_trace_line,
    parse_trace_line,
    write_trace,
)

from ..hopsfs.conftest import make_fs, run


def test_parse_and_format_roundtrip():
    cases = [
        (OpType.CREATE_FILE, {"path": "/a/f", "data": b""}),
        (OpType.READ_FILE, {"path": "/a/f"}),
        (OpType.RENAME, {"src": "/a/f", "dst": "/a/g"}),
        (OpType.MKDIR, {"path": "/a"}),
    ]
    for op, kwargs in cases:
        line = format_trace_line(op, kwargs)
        parsed_op, parsed_kwargs = parse_trace_line(line)
        assert parsed_op is op
        for key in ("path", "src", "dst"):
            if key in kwargs:
                assert parsed_kwargs[key] == kwargs[key]


def test_parse_skips_comments_and_blanks():
    assert parse_trace_line("") is None
    assert parse_trace_line("# comment") is None
    assert parse_trace_line("   ") is None


def test_parse_rejects_garbage():
    with pytest.raises(ReproError):
        parse_trace_line("frobnicate /x")
    with pytest.raises(ReproError):
        parse_trace_line("rename /only-one")
    with pytest.raises(ReproError):
        parse_trace_line("readFile")


def test_write_and_load_trace(tmp_path):
    path = tmp_path / "ops.trace"
    ops = [
        (OpType.MKDIR, {"path": "/t"}),
        (OpType.CREATE_FILE, {"path": "/t/f", "data": b""}),
        (OpType.READ_FILE, {"path": "/t/f"}),
    ]
    assert write_trace(path, ops) == 3
    workload = TraceWorkload(path, loop=False)
    assert len(workload) == 3
    assert workload.next_op()[0] is OpType.MKDIR


def test_trace_loops_by_default():
    workload = TraceWorkload(["readFile /f"], loop=True)
    for _ in range(5):
        op, kwargs = workload.next_op()
        assert op is OpType.READ_FILE
    assert workload.replayed == 5


def test_empty_trace_rejected():
    with pytest.raises(ReproError):
        TraceWorkload(["# nothing here"])


def test_trace_replay_against_real_deployment():
    """Replay a small recorded trace through the full HopsFS stack."""
    fs = make_fs()
    client = fs.client()
    trace = TraceWorkload(
        [
            "mkdir /replay",
            "createFile /replay/a",
            "createFile /replay/b",
            "rename /replay/a /replay/c",
            "readFile /replay/c",
            "listDir /replay",
            "deleteFile /replay/b",
        ],
        loop=False,
    )

    def scenario():
        results = []
        while not trace.exhausted:
            op, kwargs = trace.next_op()
            result = yield from client.op(op, **kwargs)
            results.append((op, result))
        return results

    results = run(fs, scenario())
    listing = [r for op, r in results if op is OpType.LIST_DIR][0]
    assert listing == ["b", "c"]
    assert trace.replayed == 7
