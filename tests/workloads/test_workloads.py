"""Tests for namespace generation, the Spotify mix, and drivers."""

import pytest

from repro.metrics.collectors import MetricsCollector
from repro.sim import Environment
from repro.types import OpResult, OpType
from repro.workloads import (
    SPOTIFY_MIX,
    ClosedLoopDriver,
    OpenLoopDriver,
    SingleOpWorkload,
    SpotifyWorkload,
    generate_namespace,
)


def test_mix_sums_to_one():
    assert sum(SPOTIFY_MIX.values()) == pytest.approx(1.0, abs=0.005)


def test_mix_is_read_heavy():
    reads = sum(f for op, f in SPOTIFY_MIX.items() if not op.mutates)
    assert reads > 0.9  # the Spotify workload is ~95% reads


def test_namespace_shape():
    ns = generate_namespace(num_top_dirs=3, dirs_per_top=4, files_per_dir=5, seed=1)
    assert len(ns.top_dirs) == 3
    assert len(ns.dirs) == 12
    assert len(ns.files) == 60
    assert ns.size() == 75
    assert len(ns.file_weights) == 60
    assert sum(ns.file_weights) == pytest.approx(1.0)


def test_namespace_deterministic():
    a = generate_namespace(seed=7)
    b = generate_namespace(seed=7)
    assert a.files == b.files
    assert a.file_weights == b.file_weights


def test_spotify_ops_reference_existing_or_created_paths():
    ns = generate_namespace(num_top_dirs=2, dirs_per_top=3, files_per_dir=4, seed=2)
    wl = SpotifyWorkload(ns, seed=2)
    known = set(ns.files) | set(ns.dirs) | set(ns.top_dirs)
    created = set()
    for _ in range(500):
        op, kwargs = wl.next_op(client_id=0)
        if op in (OpType.READ_FILE, OpType.STAT, OpType.EXISTS, OpType.CHMOD):
            assert kwargs["path"] in known | created
        elif op is OpType.CREATE_FILE:
            assert kwargs["path"] not in known | created
            created.add(kwargs["path"])
        elif op is OpType.DELETE_FILE:
            assert kwargs["path"] in created
            created.discard(kwargs["path"])
        elif op is OpType.RENAME:
            assert kwargs["src"] in created
            created.discard(kwargs["src"])
            created.add(kwargs["dst"])


def test_spotify_working_sets_are_stable_per_client():
    ns = generate_namespace(seed=3)
    wl = SpotifyWorkload(ns, seed=3)
    ws1 = wl.working_set(1)
    assert wl.working_set(1) is ws1
    assert len(ws1) == wl.working_set_size
    assert set(ws1) <= set(ns.files)
    assert wl.working_set(2) != ws1  # different clients, different sets


def test_single_op_workload_delete_needs_precreate():
    ns = generate_namespace(seed=4)
    wl = SingleOpWorkload(OpType.DELETE_FILE, ns, seed=4)
    paths = wl.precreate_paths(3)
    assert len(paths) == 3
    ops = [wl.next_op() for _ in range(4)]
    assert [o for o, _ in ops[:3]] == [OpType.DELETE_FILE] * 3
    assert ops[3][0] is OpType.READ_FILE  # graceful fallback when exhausted


class _StubClient:
    """Completes every op after a fixed simulated delay."""

    def __init__(self, env, delay):
        self.env = env
        self.delay = delay
        self.ops = 0

    def op(self, op, **kwargs):
        self.ops += 1
        yield self.env.timeout(self.delay)
        return True


class _StubWorkload:
    def next_op(self, client_id=None):
        return OpType.STAT, {"path": "/x"}


def test_closed_loop_driver_throughput():
    env = Environment()
    clients = [_StubClient(env, delay=2.0) for _ in range(4)]
    collector = MetricsCollector()
    driver = ClosedLoopDriver(env, clients, _StubWorkload(), collector)
    collector.open_window(0)
    driver.start()
    env.run(until=20)
    collector.close_window(20)
    # 4 clients x one op per 2ms x 20ms = 40 ops
    assert collector.completed == 40
    assert collector.throughput_ops_per_sec() == pytest.approx(2000)


def test_open_loop_driver_rate():
    env = Environment()
    clients = [_StubClient(env, delay=0.5) for _ in range(8)]
    collector = MetricsCollector()
    driver = OpenLoopDriver(env, clients, _StubWorkload(), collector, rate_per_ms=2.0)
    collector.open_window(0)
    driver.start()
    env.run(until=50)
    collector.close_window(50)
    assert collector.completed == pytest.approx(100, abs=3)


def test_collector_records_nothing_before_window_opens():
    collector = MetricsCollector()
    collector.record(OpResult(op=OpType.STAT, start_ms=0, end_ms=1))
    assert collector.completed == 0  # warmup ops are not measured
    collector.open_window(10)
    collector.record(OpResult(op=OpType.STAT, start_ms=10, end_ms=12))
    assert collector.completed == 1


def test_collector_window_filtering():
    collector = MetricsCollector()
    collector.open_window(10)
    collector.close_window(20)
    collector.record(OpResult(op=OpType.STAT, start_ms=0, end_ms=5))  # before
    collector.record(OpResult(op=OpType.STAT, start_ms=11, end_ms=15))  # inside
    collector.record(OpResult(op=OpType.STAT, start_ms=19, end_ms=25))  # after
    assert collector.completed == 1


def test_collector_failures_counted():
    collector = MetricsCollector()
    collector.open_window(0)
    collector.record(OpResult(op=OpType.STAT, start_ms=0, end_ms=1, ok=False, error="boom"))
    collector.record(OpResult(op=OpType.STAT, start_ms=0, end_ms=1))
    assert collector.failed == 1
    assert collector.failure_rate() == pytest.approx(0.5)
