"""End-to-end Spotify-mix runs: error rates and AZ-locality sanity."""

import pytest

from repro.experiments import RunConfig, run_point

_CFG = RunConfig(
    clients_per_server=16,
    warmup_ms=8.0,
    window_ms=10.0,
    namespace_top_dirs=2,
    namespace_dirs_per_top=8,
    namespace_files_per_dir=8,
)


def test_spotify_failure_rate_is_low():
    point = run_point("HopsFS-CL (3,3)", 3, config=_CFG, keep_collector=True)
    collector = point.extra["collector"]
    assert collector.completed > 100
    assert collector.failure_rate() < 0.05


def test_spotify_mix_reaches_all_op_types():
    point = run_point("HopsFS (2,1)", 3, config=_CFG, keep_collector=True)
    collector = point.extra["collector"]
    from repro.types import OpType

    assert collector.by_op[OpType.READ_FILE] > 0
    assert collector.by_op[OpType.STAT] > 0
    assert collector.by_op[OpType.LIST_DIR] > 0


def test_cl_reads_are_az_local():
    point = run_point("HopsFS-CL (3,3)", 3, config=_CFG, keep_collector=True)
    stats = point.extra["adapter"].read_stats
    assert stats.az_local_fraction() > 0.9


def test_vanilla_reads_cross_azs():
    point = run_point("HopsFS (3,3)", 3, config=_CFG, keep_collector=True)
    stats = point.extra["adapter"].read_stats
    assert stats.az_local_fraction() < 0.7


def test_ceph_cache_hit_rate_is_high():
    point = run_point("CephFS", 3, config=_CFG, keep_collector=True)
    adapter = point.extra["adapter"]
    hits = sum(getattr(c, "cache_hits", 0) for c in [])
    # infer from MDS load: most client ops never reach an MDS
    assert point.mds_requests_s < 0.6 * point.throughput_ops_s
