"""Unit-level tests of the figure drivers (tiny grids, no big sweeps)."""

import pytest

from repro.experiments import figures
from repro.net import US_WEST1_AZS


def test_table1_shape():
    table = figures.table1()
    assert table.headers[1:] == list(US_WEST1_AZS)
    assert len(table.rows) == 3
    for row in table.rows:
        assert len(row) == 4


def test_table2_contains_all_thread_types():
    table = figures.table2()
    names = {row[0] for row in table.rows}
    assert {"LDM", "TC", "RECV", "SEND", "REP", "IO", "MAIN", "total"} <= names


def test_sweep_is_cached():
    grid = [1]
    first = figures.sweep(["HopsFS (2,1)"], grid)
    second = figures.sweep(["HopsFS (2,1)"], grid)
    key = ("HopsFS (2,1)", 1)
    assert first[key] is second[key]


def test_fig5_uses_sweep_cache():
    table = figures.fig5(grid=[1])
    assert table.headers == ["setup", "1"]
    assert len(table.rows) == 9
    tput = {row[0]: row[1] for row in table.rows}
    assert all(v > 0 for v in tput.values())


def test_fig8_same_grid_no_new_runs():
    before = dict(figures._SWEEP_CACHE)
    table = figures.fig8(grid=[1])
    assert len(table.rows) == 9
    # everything was already cached by test_fig5_uses_sweep_cache
    assert set(figures._SWEEP_CACHE) == set(before)


def test_fig11_thread_rows():
    table = figures.fig11(grid=[1])
    threads = [row[0] for row in table.rows]
    assert threads == ["LDM", "TC", "RECV", "SEND", "REP", "IO", "MAIN"]
