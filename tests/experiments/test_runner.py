"""Smoke tests for the experiment harness (tiny configurations)."""

import pytest

from repro.experiments import SETUPS, RunConfig, run_point
from repro.experiments.runner import server_grid
from repro.types import OpType

_QUICK = RunConfig(
    clients_per_server=8,
    warmup_ms=4.0,
    window_ms=6.0,
    namespace_top_dirs=2,
    namespace_dirs_per_top=4,
    namespace_files_per_dir=6,
)


def test_setups_registry_complete():
    assert len(SETUPS) == 9
    for name, spec in SETUPS.items():
        assert spec.name == name
    assert SETUPS["HopsFS (2,1)"].azs == (2,)
    assert SETUPS["HopsFS-CL (3,3)"].az_aware
    assert SETUPS["CephFS - DirPinned"].dir_pinning
    assert not SETUPS["CephFS - SkipKCache"].kclient_cache


def test_server_grid_modes(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
    assert server_grid() == [1, 6, 24, 60]
    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    assert server_grid() == [1, 6, 12, 18, 24, 36, 48, 60]


def test_run_point_hopsfs_produces_throughput():
    point = run_point("HopsFS (2,1)", 2, config=_QUICK)
    assert point.completed > 0
    assert point.throughput_ops_s > 0
    assert point.avg_latency_ms > 0
    assert point.p50_ms <= point.p99_ms
    assert point.resource.window_ms == pytest.approx(6.0)


def test_run_point_cl_lower_cross_az_than_vanilla():
    vanilla = run_point("HopsFS (3,3)", 2, config=_QUICK)
    cl = run_point("HopsFS-CL (3,3)", 2, config=_QUICK)
    assert cl.resource.cross_az_mb < vanilla.resource.cross_az_mb


def test_run_point_cephfs():
    point = run_point("CephFS", 2, config=_QUICK)
    assert point.completed > 0
    assert point.mds_requests_s is not None


def test_run_point_single_op():
    point = run_point(
        "HopsFS (2,1)", 2, workload="single", op=OpType.CREATE_FILE, config=_QUICK
    )
    assert point.completed > 0


def test_run_point_delete_microbench_precreates():
    point = run_point(
        "HopsFS (2,1)", 2, workload="single", op=OpType.DELETE_FILE, config=_QUICK
    )
    assert point.completed > 0
    assert point.failed == 0  # every delete found its pre-created victim


def test_run_point_open_loop():
    config = RunConfig(**{**_QUICK.__dict__, "open_loop_rate_per_ms": 2.0})
    point = run_point("HopsFS (2,1)", 2, config=config)
    # ~2 ops/ms over the 6ms window
    assert point.completed == pytest.approx(12, abs=6)


def test_determinism_same_seed_same_result():
    a = run_point("HopsFS (2,1)", 2, config=_QUICK)
    b = run_point("HopsFS (2,1)", 2, config=_QUICK)
    assert a.completed == b.completed
    assert a.throughput_ops_s == b.throughput_ops_s
    assert a.avg_latency_ms == b.avg_latency_ms


def test_different_seed_different_stream():
    config2 = RunConfig(**{**_QUICK.__dict__, "seed": 99})
    a = run_point("HopsFS (2,1)", 2, config=_QUICK)
    b = run_point("HopsFS (2,1)", 2, config=config2)
    # identical results across different seeds would suggest a frozen RNG
    assert (a.completed, a.avg_latency_ms) != (b.completed, b.avg_latency_ms)
