"""Adapter-level tests: utilization reports and setup wiring."""

import pytest

from repro.experiments import RunConfig, run_point
from repro.experiments.setups import SETUPS

_CFG = RunConfig(
    clients_per_server=8,
    warmup_ms=4.0,
    window_ms=8.0,
    namespace_top_dirs=2,
    namespace_dirs_per_top=4,
    namespace_files_per_dir=6,
)


def test_hopsfs_report_has_thread_breakdown():
    point = run_point("HopsFS (2,1)", 2, config=_CFG)
    threads = point.resource.ndb_thread_cpu_pct
    assert set(threads) == {"ldm", "tc", "recv", "send", "rep", "io", "main"}
    assert threads["ldm"] > 0
    assert point.resource.window_ms == pytest.approx(8.0)


def test_hopsfs_single_az_has_zero_cross_az_traffic():
    point = run_point("HopsFS (2,1)", 2, config=_CFG)
    assert point.resource.cross_az_mb == 0.0
    assert point.resource.intra_az_mb > 0.0


def test_cephfs_report_storage_is_osd():
    point = run_point("CephFS", 2, config=_CFG)
    # OSDs barely work on a metadata benchmark (Fig. 10a / 12)
    assert point.resource.storage_cpu_pct < 20.0
    # the single-threaded MDS cannot use its 32-core host (Fig. 10b)
    assert point.resource.server_cpu_pct < 20.0


def test_hopsfs_cl_setups_use_read_backup_tables():
    adapter = SETUPS["HopsFS-CL (3,3)"].build(1, seed=0)
    schema = adapter.deployment.ndb.schema
    assert all(t.read_backup for t in schema.tables())
    vanilla = SETUPS["HopsFS (3,3)"].build(1, seed=0)
    assert not any(t.read_backup for t in vanilla.deployment.ndb.schema.tables())


def test_setup_ndb_layout_matches_paper():
    adapter = SETUPS["HopsFS (2,1)"].build(1, seed=0)
    ndb = adapter.deployment.ndb
    assert ndb.config.num_datanodes == 12  # Section V-A: 12 NDB datanodes
    assert ndb.config.threads.total == 27  # Table II


def test_cephfs_setup_has_twelve_osds():
    adapter = SETUPS["CephFS"].build(1, seed=0)
    assert len(adapter.cluster.osds) == 12  # "12 OSD nodes similar to NDB"
    assert adapter.cluster.config.osd_replication == 3
