"""Golden determinism tests for the sharded scale engine."""

import hashlib
import json
from dataclasses import replace

import pytest

from repro.errors import ReproError
from repro.experiments.scale import ScaleConfig, run_scale, run_shard

# Small but real: two shards over the full stack, ~a second of wall time.
TEST_CONFIG = ScaleConfig(
    population=50_000,
    rate_ops_per_ms=50.0,
    duration_ms=20.0,
    warmup_ms=5.0,
    drain_ms=10.0,
    shards=2,
    workers=1,
    seed=0,
)


@pytest.fixture(scope="module")
def artifact():
    return run_scale(TEST_CONFIG)


def _hash_deterministic(doc: dict) -> str:
    deterministic = {k: doc[k] for k in ("schema", "config", "shards", "merged")}
    return hashlib.sha256(
        json.dumps(deterministic, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def test_artifact_structure(artifact):
    assert artifact["schema"] == "repro-scale-v1"
    assert len(artifact["shards"]) == 2
    merged = artifact["merged"]
    assert merged["arrivals"] == sum(s["arrivals"] for s in artifact["shards"])
    assert merged["events"] == sum(s["events"] for s in artifact["shards"])
    assert merged["detailed"] == sum(s["detailed"] for s in artifact["shards"])
    assert merged["offered_ops_per_s"] > 0
    assert merged["collector"]["completed"] > 0
    assert merged["histogram"]["count"] == merged["collector"]["completed"]
    # hash covers exactly the deterministic sections, nothing machine-local
    assert artifact["artifact_hash"] == _hash_deterministic(artifact)
    assert "timing" in artifact and "aggregate_events_per_sec" in artifact["timing"]


def test_bit_identical_across_runs(artifact):
    again = run_scale(TEST_CONFIG)
    assert again["artifact_hash"] == artifact["artifact_hash"]
    assert again["merged"]["dispatch_hash"] == artifact["merged"]["dispatch_hash"]


def test_artifact_invariant_to_worker_count(artifact):
    forked = run_scale(replace(TEST_CONFIG, workers=2))
    assert forked["artifact_hash"] == artifact["artifact_hash"]
    assert forked["merged"] == artifact["merged"]
    # but worker count is honestly recorded in the unhashed timing section
    assert forked["timing"]["workers"] == 2


def test_seed_changes_artifact(artifact):
    other = run_scale(replace(TEST_CONFIG, seed=1))
    assert other["artifact_hash"] != artifact["artifact_hash"]
    assert other["merged"]["dispatch_hash"] != artifact["merged"]["dispatch_hash"]


def test_shards_have_distinct_streams(artifact):
    hashes = [s["dispatch_hash"] for s in artifact["shards"]]
    assert len(set(hashes)) == len(hashes)
    ids = [s["shard_id"] for s in artifact["shards"]]
    assert ids == sorted(ids)


def test_merged_dispatch_hash_is_fold_of_shards(artifact):
    h = hashlib.sha256()
    for s in artifact["shards"]:
        h.update(f"{s['shard_id']}:{s['dispatch_hash']}\n".encode())
    assert artifact["merged"]["dispatch_hash"] == h.hexdigest()


def test_population_scales_without_event_growth(artifact):
    # The tentpole claim: virtual clients are free.  20x the population
    # must not change arrival/event counts — only which ids get sampled.
    big = run_scale(replace(TEST_CONFIG, population=1_000_000))
    assert big["merged"]["arrivals"] == pytest.approx(
        artifact["merged"]["arrivals"], rel=0.05
    )
    assert big["merged"]["max_client_id"] >= artifact["merged"]["max_client_id"]


def test_unknown_setup_rejected():
    with pytest.raises(ReproError):
        run_scale(replace(TEST_CONFIG, setup="NoSuchFS (9,9)"))


def test_unknown_scenario_rejected():
    from dataclasses import asdict

    bad = replace(TEST_CONFIG, scenario="no-such-scenario")
    with pytest.raises(ReproError):
        run_shard({"config": asdict(bad), "shard_id": 0})
