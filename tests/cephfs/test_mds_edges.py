"""MDS edge cases not covered elsewhere."""

import pytest

from repro.cephfs import build_cephfs
from repro.errors import FsError, NotDirectoryError


def run(cluster, generator, until=60_000):
    return cluster.env.run_process(generator, until=until)


def test_cross_subtree_rename_unsupported():
    ceph = build_cephfs(num_mds=4)
    client = ceph.client()

    def scenario():
        # find two second-level dirs with different authoritative ranks
        yield from client.mkdir("/top")
        src_dir = dst_dir = None
        for i in range(32):
            path = f"/top/d{i}"
            yield from client.mkdir(path)
            if src_dir is None:
                src_dir = path
            elif ceph.partitioner.dir_rank(path) != ceph.partitioner.dir_rank(src_dir):
                dst_dir = path
                break
        assert dst_dir is not None
        yield from client.create(f"{src_dir}/f")
        with pytest.raises(FsError):
            yield from client.rename(f"{src_dir}/f", f"{dst_dir}/f")
        return True

    assert run(ceph, scenario())


def test_mkdir_under_file_fails():
    ceph = build_cephfs(num_mds=2)
    client = ceph.client()

    def scenario():
        yield from client.mkdir("/d")
        yield from client.create("/d/f")
        with pytest.raises((NotDirectoryError, FsError)):
            yield from client.mkdir("/d/f/sub")
        return True

    assert run(ceph, scenario())


def test_chmod_missing_raises():
    ceph = build_cephfs(num_mds=2)
    client = ceph.client()

    def scenario():
        with pytest.raises(FsError):
            yield from client.chmod("/ghost")
        return True

    assert run(ceph, scenario())


def test_unsupported_op_rejected():
    from repro.types import OpType

    ceph = build_cephfs(num_mds=1)
    client = ceph.client()

    def scenario():
        with pytest.raises(FsError):
            yield from client.op(OpType.ADD_BLOCK, path="/x")
        return True

    assert run(ceph, scenario())


def test_read_directory_rejected():
    ceph = build_cephfs(num_mds=2)
    client = ceph.client()

    def scenario():
        yield from client.mkdir("/d")
        with pytest.raises(FsError):
            yield from client.read("/d")
        return True

    assert run(ceph, scenario())
