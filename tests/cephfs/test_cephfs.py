"""Tests for the CephFS baseline model."""

import pytest

from repro.cephfs import CephConfig, SubtreePartitioner, build_cephfs
from repro.errors import FileAlreadyExistsError, FileNotFoundFsError, FsError


def run(cluster, generator, until=60_000):
    return cluster.env.run_process(generator, until=until)


@pytest.fixture
def ceph():
    return build_cephfs(num_mds=3)


@pytest.fixture
def client(ceph):
    return ceph.client()


def test_mkdir_create_read(ceph, client):
    def scenario():
        yield from client.mkdir("/top")
        yield from client.create("/top/f", data=b"abc")
        inode = yield from client.read("/top/f")
        return inode

    inode = run(ceph, scenario())
    assert not inode.is_dir
    assert inode.size == 3


def test_duplicate_create_fails(ceph, client):
    def scenario():
        yield from client.mkdir("/d")
        yield from client.create("/d/f")
        with pytest.raises(FileAlreadyExistsError):
            yield from client.create("/d/f")
        return True

    assert run(ceph, scenario())


def test_read_missing_fails(ceph, client):
    def scenario():
        with pytest.raises(FileNotFoundFsError):
            yield from client.read("/nope")
        return True

    assert run(ceph, scenario())


def test_listdir_and_delete(ceph, client):
    def scenario():
        yield from client.mkdir("/d")
        for name in ("a", "b"):
            yield from client.create(f"/d/{name}")
        names = yield from client.listdir("/d")
        yield from client.delete("/d", recursive=True)
        gone = yield from client.exists("/d")
        return names, gone

    assert run(ceph, scenario()) == (["a", "b"], False)


def test_rename_within_subtree(ceph, client):
    def scenario():
        yield from client.mkdir("/t")
        yield from client.create("/t/a")
        yield from client.rename("/t/a", "/t/b")
        a = yield from client.exists("/t/a")
        b = yield from client.exists("/t/b")
        return a, b

    assert run(ceph, scenario()) == (False, True)


def test_kernel_cache_serves_repeat_reads(ceph, client):
    def scenario():
        yield from client.mkdir("/c")
        yield from client.create("/c/f", data=b"x")
        for _ in range(10):
            yield from client.read("/c/f")
        return client.cache_hits, client.cache_misses

    hits, misses = run(ceph, scenario())
    assert misses == 1
    assert hits == 9


def test_skip_kcache_always_hits_mds():
    ceph = build_cephfs(num_mds=2, config=CephConfig(kclient_cache=False))
    client = ceph.client()

    def scenario():
        yield from client.mkdir("/c")
        yield from client.create("/c/f")
        for _ in range(5):
            yield from client.stat("/c/f")
        return client.cache_hits

    assert run(ceph, scenario()) == 0
    # Without the dentry cache each op pays per-component MDS lookups:
    # mkdir /c (1), create /c/f (1 lookup + 1), 5 x stat /c/f (1 lookup + 1).
    assert sum(m.ops_served for m in ceph.mds_list) == 13


def test_capability_revoked_on_mutation():
    """Another client's chmod invalidates the cached capability."""
    ceph = build_cephfs(num_mds=2)
    reader, writer = ceph.client(), ceph.client()

    def scenario():
        yield from reader.mkdir("/c")
        yield from reader.create("/c/f")
        inode1 = yield from reader.read("/c/f")
        yield from writer.chmod("/c/f")
        yield ceph.env.timeout(5)  # let the revoke message arrive
        assert "/c/f" not in reader.cache
        inode2 = yield from reader.read("/c/f")
        return inode1.version, inode2.version

    v1, v2 = run(ceph, scenario())
    assert v2 > v1


def test_mds_single_threaded_serializes():
    """Concurrent ops on one MDS queue behind its single thread."""
    ceph = build_cephfs(num_mds=1)
    clients = [ceph.client() for _ in range(8)]
    done_times = []

    def worker(c, i):
        yield from c.create(f"/solo-{i}")  # all in '/' -> rank 0
        done_times.append(ceph.env.now)

    def scenario():
        procs = [ceph.env.process(worker(c, i)) for i, c in enumerate(clients)]
        for p in procs:
            yield p
        return done_times

    times = run(ceph, scenario())
    # The 8 ops complete staggered by >= the MDS op cost, not in parallel.
    spread = max(times) - min(times)
    assert spread >= ceph.config.mds_op_cost_ms * 6


def test_journal_flushes_to_replicated_osds(ceph, client):
    def scenario():
        yield from client.mkdir("/j")
        for i in range(20):
            yield from client.create(f"/j/f{i}")
        yield ceph.env.timeout(100)  # several flush intervals
        return sum(mds.journal_flushes for mds in ceph.mds_list)

    flushes = run(ceph, scenario())
    assert flushes >= 1
    written = sum(osd.disk.bytes_written for osd in ceph.osds)
    # 21 mutations x 1536 bytes x 3 replicas
    assert written == 21 * 1536 * 3


def test_journal_targets_distinct():
    ceph = build_cephfs(num_mds=2)
    for seq in range(10):
        targets = ceph.journal_targets(0, seq)
        assert len(set(targets)) == 3


def test_partitioner_dynamic_imbalanced_vs_pinned_balanced():
    subtrees = [f"/top{i}/sub{j}" for i in range(4) for j in range(16)]
    paths = [f"{d}/f" for d in subtrees]
    dynamic = SubtreePartitioner(16, pinned=False)
    pinned = SubtreePartitioner(16, pinned=True)
    pinned.pin(subtrees)
    dyn = dynamic.authority_counts(paths)
    pin = pinned.authority_counts(paths)
    # Pinned: 64 subtrees round-robin over 16 ranks -> exactly 4 each.
    assert sorted(pin.values()) == [4] * 16
    # Dynamic hashing is imbalanced: some rank gets more than its share.
    assert max(dyn.values()) > 4


def test_rank_follows_containing_directory():
    p = SubtreePartitioner(8, pinned=False)
    # A file and a listing of its directory are served by the same rank.
    assert p.rank_of("/a/b/file") == p.dir_rank("/a/b")
    # Deep paths collapse to the second-level subtree.
    assert p.rank_of("/a/b/c/d/e") == p.dir_rank("/a/b")


def test_dir_pinned_balances_load():
    config = CephConfig(dir_pinning=True)
    ceph = build_cephfs(num_mds=4, config=config)
    client = ceph.client()

    def scenario():
        yield from client.mkdir("/data")
        for j in range(16):
            yield from client.mkdir(f"/data/d{j}")
            yield from client.create(f"/data/d{j}/f")
        return [m.ops_served for m in ceph.mds_list]

    served = run(ceph, scenario())
    assert sum(served) == 33
    assert sum(1 for s in served if s > 0) >= 3  # spread across ranks
