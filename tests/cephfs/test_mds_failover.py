"""MDS failover: a surviving rank adopts a dead rank's subtrees."""

import pytest

from repro.cephfs import CephConfig, build_cephfs
from repro.errors import NoNamenodeError


def run(cluster, generator, until=120_000):
    return cluster.env.run_process(generator, until=until)


def _cluster():
    return build_cephfs(
        num_mds=3,
        config=CephConfig(mds_failover_detect_ms=50.0),
    )


def test_failover_restores_subtree_service():
    ceph = _cluster()
    client = ceph.client()
    env = ceph.env

    def scenario():
        yield from client.mkdir("/top")
        yield from client.mkdir("/top/sub")
        yield from client.create("/top/sub/f")
        victim_rank = ceph.partitioner.rank_of("/top/sub/f")
        victim = ceph.mds_list[victim_rank % 3]
        victim.shutdown()
        # Before failover completes: the subtree is unavailable.
        with pytest.raises(NoNamenodeError):
            yield from client.stat("/top/sub/f")
        yield env.timeout(2000)  # detection + journal replay
        inode = yield from client.stat("/top/sub/f")
        return inode.path, ceph.failovers

    path, failovers = run(ceph, scenario())
    assert path == "/top/sub/f"
    assert failovers >= 1


def test_failover_picks_surviving_rank():
    ceph = _cluster()
    env = ceph.env

    def scenario():
        ceph.mds_list[1].shutdown()
        yield env.timeout(2000)
        target = ceph.partitioner.rank_overrides.get(1)
        return target

    target = run(ceph, scenario())
    assert target in (0, 2)
    assert ceph.mds_list[target].running


def test_override_chains_resolve():
    from repro.cephfs import SubtreePartitioner

    p = SubtreePartitioner(4, pinned=False)
    p.install_override(1, 2)
    p.install_override(2, 3)
    assert p._resolve_override(1) == 3
    # cycles terminate rather than loop forever
    p.install_override(3, 1)
    assert p._resolve_override(1) in (1, 2, 3)
