"""CephFS failure and robustness paths."""

import pytest

from repro.cephfs import CephConfig, build_cephfs
from repro.errors import NoNamenodeError


def run(cluster, generator, until=60_000):
    return cluster.env.run_process(generator, until=until)


def test_mds_shutdown_makes_subtree_unavailable():
    ceph = build_cephfs(num_mds=2)
    client = ceph.client()

    def scenario():
        yield from client.mkdir("/x")
        rank = ceph.partitioner.rank_of("/x")
        ceph.mds_list[rank % 2].shutdown()
        with pytest.raises(NoNamenodeError):
            yield from client.stat("/x")
        return True

    assert run(ceph, scenario())


def test_osd_failure_does_not_stop_mds():
    """A dead OSD only stalls journal flushes; serving continues."""
    ceph = build_cephfs(num_mds=2)
    client = ceph.client()

    def scenario():
        yield from client.mkdir("/d")
        for osd in ceph.osds:
            osd.shutdown()
        for i in range(5):
            yield from client.create(f"/d/f{i}")
        yield ceph.env.timeout(50)  # journal flushes fail, MDS keeps going
        listing = yield from client.listdir("/d")
        return listing

    listing = run(ceph, scenario())
    assert listing == [f"f{i}" for i in range(5)]


def test_osd_count_validation():
    with pytest.raises(Exception):
        CephConfig(num_osds=2, osd_replication=3)


def test_mds_counts_served_ops():
    ceph = build_cephfs(num_mds=1)
    client = ceph.client()

    def scenario():
        yield from client.mkdir("/m")
        yield from client.stat("/m")
        yield from client.stat("/m")  # cache hit: not served by the MDS
        return ceph.mds_list[0].ops_served

    assert run(ceph, scenario()) == 2


def test_cluster_uses_shared_network_when_given():
    from repro.net import Network, build_us_west1
    from repro.sim import Environment

    env = Environment()
    network = Network(env, build_us_west1())
    ceph = build_cephfs(num_mds=1, env=env, network=network)
    assert ceph.network is network
    assert ceph.env is env
