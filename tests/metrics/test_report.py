"""Tests for table rendering and utilization reports."""

from repro.metrics import ResourceReport, Table, comparison_line, format_value


def test_format_value():
    assert format_value(0.0) == "0"
    assert format_value(1234567.0) == "1,234,567"
    assert format_value(12.34) == "12.3"
    assert format_value(1.2345) == "1.234"
    assert format_value("text") == "text"


def test_table_render_alignment():
    table = Table(title="T", headers=["name", "value"])
    table.add_row("alpha", 1.0)
    table.add_row("b", 123456.0)
    table.add_note("a note")
    rendered = table.render()
    lines = rendered.splitlines()
    assert lines[0] == "T"
    assert "alpha" in rendered
    assert "123,456" in rendered
    assert rendered.endswith("note: a note")
    # all data lines equally wide columns
    header_line = lines[2]
    assert header_line.startswith("name")


def test_table_column_access():
    table = Table(title="T", headers=["a", "b"])
    table.add_row(1, 2)
    table.add_row(3, 4)
    assert table.column("b") == [2, 4]


def test_comparison_line():
    line = comparison_line("claim", "1.62M", 1_580_000.0, ok=True)
    assert "paper=1.62M" in line
    assert "[holds]" in line
    line = comparison_line("claim", "x", 1.0, ok=False)
    assert "[DEVIATES]" in line


def test_resource_report_rows():
    report = ResourceReport(window_ms=10, storage_cpu_pct=50.0)
    rows = dict(report.as_rows())
    assert rows["storage CPU %"] == 50.0
    assert "cross-AZ MB" in rows
