"""Merge-safety of Histogram and MetricsCollector (the shard-merge contract).

The sharded scale engine folds per-shard collectors and histograms into one
merged artifact.  The fold must be associative and order-deterministic:
``merge(a, b)`` and ``merge(b, a)`` agree on every count, total and derived
number, and ``merge(merge(a, b), c) == merge(a, merge(b, c))``.
"""

import random

import pytest

from repro.chaos.timeline import TimelineCollector
from repro.metrics.collectors import MetricsCollector
from repro.obs.metrics import Histogram
from repro.types import OpResult, OpType


def _histogram(seed: int, n: int = 200) -> Histogram:
    rng = random.Random(seed)
    h = Histogram("scale.latency_ms")
    for _ in range(n):
        h.observe(rng.uniform(0.01, 6000.0))
    return h


def _collector(seed: int, n: int = 120) -> MetricsCollector:
    rng = random.Random(seed)
    c = MetricsCollector()
    c.open_window(0.0)
    ops = list(OpType)
    for i in range(n):
        ok = rng.random() > 0.1
        c.record(
            OpResult(
                op=rng.choice(ops),
                start_ms=float(i),
                end_ms=float(i) + rng.uniform(0.1, 20.0) * 0.001 + 0.5,
                ok=ok,
                error=None if ok else "FsError",
                retries=rng.randrange(3),
            )
        )
    c.close_window(1000.0)
    return c


# -- Histogram ---------------------------------------------------------------

def test_histogram_merge_commutative_on_counts_and_totals():
    a, b = _histogram(1), _histogram(2)
    ab, ba = a.merge(b), b.merge(a)
    assert ab.bucket_counts == ba.bucket_counts
    assert ab.count == ba.count == a.count + b.count
    assert ab.total == ba.total
    assert ab.min == ba.min and ab.max == ba.max


def test_histogram_merge_associative():
    a, b, c = _histogram(1), _histogram(2), _histogram(3)
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.bucket_counts == right.bucket_counts
    assert left.count == right.count
    assert left.total == right.total


def test_histogram_merge_does_not_mutate_inputs():
    a, b = _histogram(1), _histogram(2)
    before = (list(a.bucket_counts), a.count, a.total)
    a.merge(b)
    assert (list(a.bucket_counts), a.count, a.total) == before


def test_histogram_merge_with_empty_is_identity():
    a = _histogram(1)
    empty = Histogram("scale.latency_ms")
    merged = a.merge(empty)
    assert merged.bucket_counts == a.bucket_counts
    assert merged.count == a.count
    assert merged.min == a.min and merged.max == a.max


def test_histogram_merge_rejects_mismatched_buckets():
    a = Histogram("a", buckets=(1.0, 2.0))
    b = Histogram("b", buckets=(1.0, 3.0))
    with pytest.raises(ValueError):
        a.merge(b)


# -- MetricsCollector --------------------------------------------------------

def test_collector_merge_commutative():
    a, b = _collector(1), _collector(2)
    ab, ba = a.merge(b), b.merge(a)
    assert ab.completed == ba.completed == a.completed + b.completed
    assert ab.failed == ba.failed
    assert ab.retried == ba.retried
    assert ab.latencies_ms == ba.latencies_ms  # sorted => order-free
    assert ab.failed_latencies_ms == ba.failed_latencies_ms
    assert dict(ab.by_op) == dict(ba.by_op)
    assert ab.summary() == ba.summary()


def test_collector_merge_associative_summary():
    a, b, c = _collector(1), _collector(2), _collector(3)
    assert a.merge(b).merge(c).summary() == a.merge(b.merge(c)).summary()


def test_collector_merge_window_is_union():
    a, b = MetricsCollector(), MetricsCollector()
    a.open_window(10.0)
    a.close_window(50.0)
    b.open_window(20.0)
    b.close_window(80.0)
    merged = a.merge(b)
    assert merged.window_start == 10.0
    assert merged.window_end == 80.0


def test_collector_merge_handles_unopened_windows():
    a, b = _collector(1), MetricsCollector()
    merged = a.merge(b)
    assert merged.window_start == a.window_start
    assert merged.window_end == a.window_end
    assert merged.completed == a.completed


def test_collector_merge_percentiles_match_pooled_population():
    a, b = _collector(1), _collector(2)
    merged = a.merge(b)
    pooled = MetricsCollector()
    pooled.open_window(0.0)
    pooled.latencies_ms = sorted(a.latencies_ms + b.latencies_ms)
    pooled.close_window(1000.0)
    assert merged.latency_percentiles() == pooled.latency_percentiles()


# -- TimelineCollector -------------------------------------------------------

def _timeline(seed: int, n: int = 120) -> TimelineCollector:
    rng = random.Random(seed)
    c = TimelineCollector(bucket_ms=20.0)
    c.open_window(0.0)
    ops = list(OpType)
    for _ in range(n):
        ok = rng.random() > 0.1
        start = rng.uniform(0.0, 900.0)
        c.record(
            OpResult(
                op=rng.choice(ops),
                start_ms=start,
                end_ms=start + rng.uniform(0.1, 20.0),
                ok=ok,
                error=None if ok else "FsError",
                retries=rng.randrange(3),
            )
        )
    c.close_window(1000.0)
    return c


def test_timeline_merge_commutative():
    a, b = _timeline(1), _timeline(2)
    ab, ba = a.merge(b), b.merge(a)
    assert ab.timeline() == ba.timeline()
    assert ab.completed == ba.completed == a.completed + b.completed
    assert ab.summary() == ba.summary()


def test_timeline_merge_associative():
    a, b, c = _timeline(1), _timeline(2), _timeline(3)
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.timeline() == right.timeline()
    assert left.summary() == right.summary()


def test_timeline_merge_buckets_add_index_wise():
    a, b = _timeline(1), _timeline(2)
    merged = a.merge(b)
    rows = {row["t_ms"]: row for row in merged.timeline()}
    for source in (a, b):
        for t_ms in (row["t_ms"] for row in source.timeline()):
            assert t_ms in rows
    ok_a = sum(row["ok"] for row in a.timeline())
    ok_b = sum(row["ok"] for row in b.timeline())
    assert sum(row["ok"] for row in merged.timeline()) == ok_a + ok_b
    assert sum(row["failed"] for row in merged.timeline()) == a.failed + b.failed


def test_timeline_merge_does_not_mutate_inputs():
    a, b = _timeline(1), _timeline(2)
    before_a, before_b = a.timeline(), b.timeline()
    a.merge(b)
    assert a.timeline() == before_a
    assert b.timeline() == before_b


def test_timeline_merge_rejects_mismatched_bucket_width():
    with pytest.raises(ValueError):
        TimelineCollector(bucket_ms=20.0).merge(TimelineCollector(bucket_ms=10.0))
