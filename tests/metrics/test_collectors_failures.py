"""Failed-op accounting in MetricsCollector.

Failed operations must contribute their retries and keep their latencies
in a separate population (``failed_latencies_ms``) so error-path analysis
never skews the headline success percentiles.
"""

import pytest

from repro.metrics.collectors import MetricsCollector
from repro.types import OpResult, OpType


def _result(ok, start=0.0, end=5.0, retries=0):
    return OpResult(op=OpType.STAT, start_ms=start, end_ms=end, ok=ok, retries=retries)


def _collector():
    c = MetricsCollector()
    c.open_window(0.0)
    c.close_window(100.0)
    return c


def test_failed_ops_record_latency_and_retries():
    c = _collector()
    c.record(_result(ok=False, end=30.0, retries=3))
    c.record(_result(ok=False, end=10.0, retries=1))
    assert c.failed == 2
    assert c.retried == 4
    assert c.failed_latencies_ms == [30.0, 10.0]
    assert c.avg_failed_latency_ms() == pytest.approx(20.0)


def test_failed_latencies_do_not_skew_success_percentiles():
    c = _collector()
    c.record(_result(ok=True, end=1.0))
    c.record(_result(ok=False, end=99.0, retries=5))
    assert c.completed == 1
    assert c.latencies_ms == [1.0]  # success population untouched
    assert c.latency_percentiles()[99] == 1.0
    assert c.failure_rate() == pytest.approx(0.5)


def test_retries_counted_for_both_outcomes():
    c = _collector()
    c.record(_result(ok=True, retries=2))
    c.record(_result(ok=False, retries=3))
    assert c.retried == 5


def test_out_of_window_failures_ignored():
    c = _collector()
    c.record(_result(ok=False, start=100.0, end=150.0, retries=9))
    assert c.failed == 0
    assert c.retried == 0
    assert c.failed_latencies_ms == []
    assert c.avg_failed_latency_ms() == 0.0
