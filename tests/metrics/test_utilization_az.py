"""Per-AZ utilization aggregation (Figures 12/13 AZ-skew surface)."""

import pytest

from repro.metrics.report import az_skew_note
from repro.metrics.utilization import ResourceReport, per_az_utilization
from repro.net.traffic import NodeTraffic, TrafficMatrix


def _delta():
    delta = TrafficMatrix()
    # Two storage nodes in az1 (uneven), one in az2; one server per AZ.
    delta.node["dn1"] = NodeTraffic(sent=4000, received=8000)
    delta.node["dn2"] = NodeTraffic(sent=0, received=4000)
    delta.node["dn3"] = NodeTraffic(sent=2000, received=2000)
    delta.node["nn1"] = NodeTraffic(sent=1000, received=3000)
    # nn2 exists but moved no bytes: absent from the delta on purpose.
    return delta


_AZ = {"dn1": 1, "dn2": 1, "dn3": 2, "nn1": 1, "nn2": 2}


def _per_az(window_ms=2.0):
    return per_az_utilization(
        _delta(),
        storage_addrs=["dn1", "dn2", "dn3"],
        server_addrs=["nn1", "nn2"],
        az_of=_AZ.__getitem__,
        window_ms=window_ms,
    )


def test_per_az_rates_are_per_node_averages():
    per_az = _per_az()
    assert set(per_az) == {1, 2}
    az1, az2 = per_az[1], per_az[2]
    assert az1.storage_nodes == 2 and az1.server_nodes == 1
    assert az2.storage_nodes == 1 and az2.server_nodes == 1
    # az1 storage: (8000+4000) recv over 2 nodes over 2 ms -> 3.0 MB/s read.
    assert az1.storage_net_read_mb_s == pytest.approx(3.0)
    assert az1.storage_net_write_mb_s == pytest.approx(1.0)
    assert az2.storage_net_read_mb_s == pytest.approx(1.0)
    assert az2.storage_net_write_mb_s == pytest.approx(1.0)
    assert az1.server_net_read_mb_s == pytest.approx(1.5)
    # Idle node still counts in the denominator, with zero traffic.
    assert az2.server_net_read_mb_s == 0.0
    assert az1.storage_net_mb_s == pytest.approx(4.0)


def test_zero_window_yields_no_rows():
    assert _per_az(window_ms=0.0) == {}


def test_az_skew_max_over_mean():
    report = ResourceReport()
    report.per_az = _per_az()
    # storage rates: az1=4.0, az2=2.0 -> mean 3.0, max 4.0.
    assert report.az_skew("storage") == pytest.approx(4.0 / 3.0)
    # server rates: az1=2.0, az2=0.0 -> mean 1.0, max 2.0.
    assert report.az_skew("server") == pytest.approx(2.0)
    assert ResourceReport().az_skew() == 1.0  # no per-AZ data


def test_as_rows_includes_per_az_lines():
    report = ResourceReport()
    report.per_az = _per_az()
    labels = [label for label, _v in report.as_rows()]
    assert "az1 storage net MB/s" in labels
    assert "az2 server net MB/s" in labels


def test_az_skew_note_formats_and_skips_empty():
    report = ResourceReport()
    assert az_skew_note("HopsFS-CL (3,3)", report) is None
    report.per_az = _per_az()
    note = az_skew_note("HopsFS-CL (3,3)", report, tier="storage")
    assert note is not None
    assert "az1" in note and "az2" in note and "max/mean 1.33x" in note
